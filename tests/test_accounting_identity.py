"""The cycle-accounting identity, suite-wide.

For every loop of every workload suite, the sum of the PerfCounters
bubble buckets plus unstalled execution must equal the total simulated
cycles (``counters.total_cycles == sim.cycles``) — the invariant that
makes the counter-based analysis of Sec. 4.5 (and the trace analyzer's
closed accounting, which reuses :func:`verify_cycle_identity`) sound.
"""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.accounting import cycle_identity_residual, verify_cycle_identity
from repro.core.compiler import LoopCompiler
from repro.harness.jobs import collect_profile
from repro.machine import ItaniumMachine
from repro.sim import MemorySystem, simulate_loop
from repro.sim.counters import PerfCounters
from repro.workloads import suite_by_name

SUITES = ["micro", "cpu2006", "cpu2000"]
CONFIGS = {
    "baseline": baseline_config(),
    "hlo": CompilerConfig(hint_policy=HintPolicy.HLO,
                          trip_count_threshold=32),
}


def _loops(suite_name):
    for bench in suite_by_name(suite_name):
        for lw in bench.loops:
            yield bench, lw


@pytest.mark.parametrize("suite_name", SUITES)
@pytest.mark.parametrize("config_name", ["baseline", "hlo"])
def test_identity_holds_for_every_suite_loop(suite_name, config_name):
    machine = ItaniumMachine()
    config = CONFIGS[config_name]
    failures = []
    for bench, lw in _loops(suite_name):
        profile = collect_profile(bench, seed=2008) if config.pgo else None
        loop, layout = lw.build()
        compiled = LoopCompiler(machine, config).compile(loop, profile)
        sim = simulate_loop(
            compiled.result, machine, layout, [50, 30],
            memory=MemorySystem(machine.timings), seed=17,
        )
        if not verify_cycle_identity(sim.cycles, sim.counters):
            failures.append(
                f"{bench.name}/{loop.name}: residual "
                f"{cycle_identity_residual(sim.cycles, sim.counters)!r}"
            )
    assert not failures, failures


def test_residual_reports_the_gap():
    counters = PerfCounters()
    counters.unstalled = 90.0
    counters.be_exe_bubble = 10.0
    assert cycle_identity_residual(100.0, counters) == 0.0
    assert cycle_identity_residual(103.0, counters) == 3.0
    assert verify_cycle_identity(100.0, counters)
    assert not verify_cycle_identity(103.0, counters)


def test_identity_tolerates_float_summation_noise():
    counters = PerfCounters()
    counters.unstalled = 1e9
    # a few ulps of drift from different summation order must pass
    assert verify_cycle_identity(1e9 * (1.0 + 1e-12), counters)
    assert not verify_cycle_identity(1e9 * 1.001, counters)
