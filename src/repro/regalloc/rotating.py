"""Blades-style rotating register allocation (Sec. 3.3, citing Rau et al.).

Every loop-defined value gets a contiguous *blade* of rotating registers
whose length equals the number of kernel iterations the value stays live
(its :meth:`~repro.regalloc.lifetimes.RegLifetime.span`).  Blades of
distinct values are disjoint, so the per-class demand is the sum of spans.
Stage predicates claim the first SC rotating predicates (``p16`` up), as in
the paper's figures.

"Sometimes, the compiler can successfully schedule a loop but fails in
rotating register allocation because there are not enough registers
available" — that failure is exactly what :func:`allocate_rotating`
signals, triggering the driver's latency-reduction / II-increase ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegisterAllocationError
from repro.ir.registers import (
    Reg,
    RegClass,
    ROTATING_FR_BASE,
    ROTATING_GR_BASE,
    ROTATING_PR_BASE,
)
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.schedule import Schedule
from repro.regalloc.lifetimes import RegLifetime, compute_lifetimes

_ROTATING_BASES = {
    RegClass.GR: ROTATING_GR_BASE,
    RegClass.FR: ROTATING_FR_BASE,
    RegClass.PR: ROTATING_PR_BASE,
}


@dataclass
class RotatingAllocation:
    """Result of rotating allocation for one scheduled loop."""

    #: virtual reg -> (physical base register number at definition, span)
    blades: dict[Reg, tuple[int, int]] = field(default_factory=dict)
    #: rotating registers used per class (incl. stage predicates for PR)
    used: dict[RegClass, int] = field(default_factory=dict)
    capacity: dict[RegClass, int] = field(default_factory=dict)
    stage_count: int = 0
    lifetimes: list[RegLifetime] = field(default_factory=list)

    def physical_def(self, reg: Reg) -> int:
        """Register number written by the defining instruction."""
        return self.blades[reg][0]

    def physical_use(self, reg: Reg, rotations: int) -> int:
        """Register number read ``rotations`` kernel iterations after def."""
        base, span = self.blades[reg]
        if rotations >= span:
            raise RegisterAllocationError(
                f"{reg} read {rotations} rotations after def, blade span {span}"
            )
        return base + rotations

    def utilization(self, rclass: RegClass) -> float:
        cap = self.capacity.get(rclass, 0)
        return self.used.get(rclass, 0) / cap if cap else 0.0


def allocate_rotating(
    schedule: Schedule, machine: ItaniumMachine
) -> RotatingAllocation:
    """Assign rotating blades; raise when a class runs out of registers."""
    lifetimes = compute_lifetimes(schedule)
    ii = schedule.ii
    sc = schedule.stage_count

    alloc = RotatingAllocation(stage_count=sc, lifetimes=lifetimes)
    cursors: dict[RegClass, int] = {
        RegClass.GR: 0,
        RegClass.FR: 0,
        RegClass.PR: sc,  # stage predicates occupy the first SC slots
    }

    # blades in definition order keeps the layout readable and deterministic
    for lt in sorted(lifetimes, key=lambda l: (l.def_time, l.definer.index)):
        rclass = lt.rclass
        if rclass not in cursors:
            raise RegisterAllocationError(
                f"cannot rotate register class {rclass}: {lt.reg}"
            )
        span = lt.span(ii)
        offset = cursors[rclass]
        cursors[rclass] = offset + span
        alloc.blades[lt.reg] = (_ROTATING_BASES[rclass] + offset, span)

    for rclass, cursor in cursors.items():
        capacity = machine.rotating_capacity(rclass)
        alloc.used[rclass] = cursor
        alloc.capacity[rclass] = capacity
        if cursor > capacity:
            raise RegisterAllocationError(
                f"loop {schedule.loop.name!r}: {rclass.name} rotating demand "
                f"{cursor} exceeds capacity {capacity} (II={ii}, SC={sc})"
            )
    return alloc
