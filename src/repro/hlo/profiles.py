"""Profiles: runtime trip-count behaviour and block-count profiling.

A :class:`TripDistribution` describes how many iterations a loop actually
runs per invocation — workloads carry one distribution for the *training*
input and one for the *reference* input, which is how the paper's
177.mesa pathology arises (trains at 154 iterations, runs at 8; Sec. 4.2).

:func:`collect_block_profile` plays the role of a PGO training run:
it samples the training distribution and records average trip counts.
:func:`static_profile_estimate` is the fallback "static profile based on
heuristic rules" whose accuracy "is naturally low" (Sec. 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.ir.loop import Loop, TripCountInfo, TripCountSource


@dataclass(frozen=True)
class TripDistribution:
    """Per-invocation trip counts of a loop at runtime.

    ``kind`` selects the generator:

    * ``constant`` — every invocation runs ``mean`` iterations;
    * ``uniform`` — uniform in ``[low, high]``;
    * ``bimodal`` — ``low`` with probability ``p_low``, else ``high``
      (the "large variance" case discussed in Sec. 3.1).
    """

    kind: str = "constant"
    mean: float = 100.0
    low: int = 1
    high: int = 1
    p_low: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "uniform", "bimodal"):
            raise WorkloadError(f"unknown trip distribution kind {self.kind!r}")

    def average(self) -> float:
        if self.kind == "constant":
            return self.mean
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.p_low * self.low + (1.0 - self.p_low) * self.high

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` per-invocation trip counts (always >= 1)."""
        if self.kind == "constant":
            trips = np.full(n, max(1, round(self.mean)), dtype=np.int64)
        elif self.kind == "uniform":
            trips = rng.integers(self.low, self.high + 1, size=n)
        else:
            choice = rng.random(n) < self.p_low
            trips = np.where(choice, self.low, self.high).astype(np.int64)
        return np.maximum(trips, 1)


@dataclass
class BlockProfile:
    """Average trip counts per loop name, as PGO block counts provide."""

    average_trips: dict[str, float] = field(default_factory=dict)
    invocations: dict[str, int] = field(default_factory=dict)

    def trip_info(self, loop_name: str) -> TripCountInfo | None:
        if loop_name not in self.average_trips:
            return None
        return TripCountInfo(
            estimate=self.average_trips[loop_name],
            source=TripCountSource.PGO,
        )


def collect_block_profile(
    loops: dict[str, TripDistribution],
    invocations: dict[str, int] | None = None,
    seed: int = 7,
    samples: int = 64,
) -> BlockProfile:
    """Simulate a PGO training run over the given training distributions.

    "Classic block count profiles are more common, and from the execution
    counts of basic blocks we can easily calculate the average trip counts
    of loops." (Sec. 3.1)
    """
    rng = np.random.default_rng(seed)
    profile = BlockProfile()
    for name, dist in loops.items():
        trips = dist.sample(rng, samples)
        profile.average_trips[name] = float(np.mean(trips))
        profile.invocations[name] = (invocations or {}).get(name, 1)
    return profile


def static_profile_estimate(loop: Loop, default: float = 100.0) -> TripCountInfo:
    """The no-PGO static profile heuristic (Sec. 4.3).

    Static array bounds cap the estimate; otherwise a generic default is
    assumed — which is exactly how genuinely short loops get mistaken for
    long ones without profile feedback.
    """
    estimate = default
    if loop.trip_count.max_trips is not None:
        estimate = min(estimate, float(loop.trip_count.max_trips))
    return TripCountInfo(
        estimate=estimate,
        source=TripCountSource.HEURISTIC,
        max_trips=loop.trip_count.max_trips,
        contiguous_across_outer=loop.trip_count.contiguous_across_outer,
    )


def geometric_mean(ratios: list[float]) -> float:
    """Geomean helper used by the experiment harness and benches."""
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(max(r, 1e-12)) for r in ratios) / len(ratios))
