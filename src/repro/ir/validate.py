"""IR well-formedness checks.

The pipeliner relies on loops being in a dynamic-single-assignment-friendly
form: every virtual register has at most one definition site in the body
(the same site may both read and write a register, which is how induction
variables and accumulators express loop recurrences).

The actual checks live in :mod:`repro.analysis.irlint` (the SA1xx lint
pass), which also covers the gaps the original in-line version had:
use-before-def of virtuals not in ``live_in`` and slot-by-slot operand
arity.  :func:`validate_loop` is kept as the raising entry point the
parser and builders call.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.loop import Loop


def validate_loop(loop: Loop) -> None:
    """Raise :class:`IRError` on the first error-severity lint finding."""
    # imported lazily: repro.analysis imports the IR modules
    from repro.analysis.irlint import lint_loop

    errors = lint_loop(loop).errors
    if errors:
        raise IRError(f"loop {loop.name!r}: {errors[0].message}")
