"""Register allocation for pipelined loops.

Rotating registers carry the values that flow between pipeline stages
(Sec. 1.1); non-rotating (static) registers hold loop invariants and
live-out values.  When rotating demand exceeds the architectural supply,
allocation *fails* and the pipeliner driver falls back — first to base
load latencies at the same II, then to higher IIs (Sec. 3.3).
"""

from repro.regalloc.lifetimes import RegLifetime, compute_lifetimes
from repro.regalloc.rotating import RotatingAllocation, allocate_rotating
from repro.regalloc.nonrotating import StaticAllocation, allocate_static

__all__ = [
    "RegLifetime",
    "compute_lifetimes",
    "RotatingAllocation",
    "allocate_rotating",
    "StaticAllocation",
    "allocate_static",
]
