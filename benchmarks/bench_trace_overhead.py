"""Tracing overhead on the micro suite (real timing rounds).

The ``repro.trace`` acceptance criterion: with a :class:`NullSink`
attached (all interest flags off), the simulator's hoisted flag tests
must cost <5% over an untraced run on the micro suite.  A full
:class:`StallAttribution` capture is timed too, for scale — that one is
allowed to cost whatever the event volume costs.
"""

import statistics
import time

import pytest

from benchmarks.conftest import hlo_cfg
from repro.harness.jobs import run_loops
from repro.machine import ItaniumMachine
from repro.sim import MemorySystem, simulate_loop
from repro.trace import NullSink, StallAttribution
from repro.workloads import micro_suite


@pytest.fixture(scope="module")
def compiled_micro(machine):
    """Every micro loop compiled under HLO, with its layout and trips."""
    from repro.core.compiler import LoopCompiler
    from repro.harness.jobs import collect_profile

    cells = []
    for bench in micro_suite():
        profile = collect_profile(bench, seed=2008)
        for lw in bench.loops:
            loop, layout = lw.build()
            compiled = LoopCompiler(machine, hlo_cfg()).compile(loop, profile)
            cells.append((compiled.result, layout))
    return cells


def _simulate_suite(cells, machine, sink):
    for result, layout in cells:
        simulate_loop(
            result, machine, layout, [400],
            memory=MemorySystem(machine.timings), seed=11, sink=sink,
        )


def _time_suite(cells, machine, sink, rounds=9):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        _simulate_suite(cells, machine, sink)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_null_sink_overhead_under_5_percent(compiled_micro, machine, record):
    base = _time_suite(compiled_micro, machine, sink=None)
    null = _time_suite(compiled_micro, machine, sink=NullSink())
    attributed = _time_suite(compiled_micro, machine, sink=StallAttribution())
    overhead = (null / base - 1.0) * 100.0
    record(
        "trace_overhead",
        "\n".join([
            f"untraced:          {base * 1e3:8.2f} ms/suite",
            f"NullSink:          {null * 1e3:8.2f} ms/suite "
            f"({overhead:+.1f}%)",
            f"StallAttribution:  {attributed * 1e3:8.2f} ms/suite "
            f"({(attributed / base - 1.0) * 100.0:+.1f}%)",
        ]),
    )
    # medians jitter a couple of percent on shared CI runners; the
    # acceptance bound is 5 with a little slack for the timer itself
    assert overhead < 5.0, f"NullSink overhead {overhead:.1f}% >= 5%"


def test_trace_flag_through_harness(benchmark, machine):
    """`run_loops(trace=True)` end to end, as `--trace` pays it."""
    bench = micro_suite()[0]

    def run():
        return run_loops(bench, hlo_cfg(), machine, seed=2008, trace=True)

    out = benchmark(run)
    assert out.trace is not None and out.trace["ok"]
