"""End-to-end reproduction of the paper's running example (Figs. 1-4, 6).

Fig. 1: the source loop takes three cycles per iteration.
Fig. 2/3: software pipelining turns it into a 3-stage, II=1 kernel using
stage predicates p16-p18 and rotating registers r32-r35.
Fig. 4/6: scheduling the load for a 3-cycle latency adds two "latency
buffer" stages (5 stages total) without changing the II, and the kernel
reads the load's value three rotations later ((p19) add r36 = r35, ...).
"""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ddg import build_ddg
from repro.ir import parse_loop
from repro.ir.memref import LatencyHint
from repro.machine.hints import HintTranslation
from repro.pipeliner import pipeline_loop
from repro.pipeliner.scheduler import list_schedule_length
from tests.conftest import RUNNING_EXAMPLE


@pytest.fixture
def example():
    return parse_loop(RUNNING_EXAMPLE)


class TestFig1SourceLoop:
    def test_three_cycles_per_source_iteration(self, example, machine):
        assert list_schedule_length(build_ddg(example), machine) == 3


class TestFig3BaselineKernel:
    def test_pipeline_structure(self, example, machine):
        result = pipeline_loop(example, machine, baseline_config())
        assert result.pipelined
        assert result.ii == 1
        assert result.stats.stage_count == 3
        # each stage holds exactly one instruction
        stages = {result.schedule.stage_of(i) for i in example.body}
        assert stages == {0, 1, 2}

    def test_kernel_text_matches_paper(self, example, machine):
        result = pipeline_loop(example, machine, baseline_config())
        text = result.kernel.format()
        for fragment in (
            "(p16) ld4 r32",
            "(p17) add r34 = r33",
            "(p18) st4",
            "br.ctop",
        ):
            assert fragment in text, f"missing {fragment!r} in:\n{text}"


class TestFig4And6LatencyTolerant:
    @pytest.fixture
    def boosted(self, example, machine):
        example.body[0].memref.hint = LatencyHint.L2
        machine3 = machine.with_translation(
            HintTranslation(name="three-cycle", l2=3)
        )
        return pipeline_loop(
            example,
            machine3,
            CompilerConfig(trip_count_threshold=0, prefetch=False),
        )

    def test_two_latency_buffer_stages(self, boosted):
        assert boosted.ii == 1  # II unchanged!
        assert boosted.stats.stage_count == 5  # 3 + 2 buffer stages

    def test_clustering_factor_three(self, boosted):
        placement = boosted.stats.placements[0]
        assert placement.use_distance == 3
        assert placement.additional_latency == 2
        assert placement.clustering_factor(boosted.ii) == 3

    def test_kernel_text_matches_fig6(self, boosted):
        text = boosted.kernel.format()
        assert "(p16) ld4 r32" in text
        assert "(p19) add r36 = r35" in text
        assert "(p20) st4" in text and "r37" in text

    def test_load_blade_spans_clustered_instances(self, boosted, machine):
        """Three instances of the load live in r32-r34 simultaneously
        (Sec. 2.2): the blade must span >= k registers."""
        load_data = boosted.loop.body[0].defs[0]
        base, span = boosted.rotating.blades[load_data]
        assert span >= 3

    def test_fill_drain_cost(self, boosted):
        # one extra kernel iteration per extra stage (Sec. 1.1)
        assert boosted.kernel.total_kernel_iterations(100) == 104
