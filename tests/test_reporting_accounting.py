"""Focused tests for reporting, accounting, and experiment plumbing."""

import pytest

from repro.core.accounting import BUCKETS, CycleAccount
from repro.core.reporting import format_account_table, format_gain_table
from repro.sim.counters import PerfCounters


def _account(label, **buckets):
    counters = PerfCounters(**buckets)
    return CycleAccount(label=label, counters=counters)


class TestCycleAccount:
    def test_shares(self):
        acc = _account("a", unstalled=60, be_exe_bubble=40)
        assert acc.total == 100
        assert acc.share("unstalled") == pytest.approx(0.6)
        assert acc.share("be_exe_bubble") == pytest.approx(0.4)
        assert acc.share("be_rse_bubble") == 0.0

    def test_unknown_bucket_rejected(self):
        acc = _account("a", unstalled=1)
        with pytest.raises(KeyError):
            acc.share("bogus")

    def test_delta_percent(self):
        base = _account("base", be_exe_bubble=200)
        variant = _account("v", be_exe_bubble=150)
        assert variant.delta_percent(base, "be_exe_bubble") == pytest.approx(
            -25.0
        )

    def test_delta_percent_from_zero_baseline_is_infinite(self):
        """A bucket appearing out of nowhere is a regression, not a no-op."""
        import math

        variant = _account("v", be_exe_bubble=150)
        empty = _account("e")
        assert math.isinf(variant.delta_percent(empty, "be_exe_bubble"))
        # both zero really is "no change"
        assert empty.delta_percent(_account("e2"), "be_exe_bubble") == 0.0

    def test_ozq_full_percent(self):
        acc = _account("a", unstalled=90, be_l1d_fpu_bubble=10)
        acc.counters.ozq_full_cycles = 8.2
        assert acc.ozq_full_percent() == pytest.approx(8.2)

    def test_buckets_constant_is_complete(self):
        counters = PerfCounters(
            unstalled=1, be_exe_bubble=1, be_l1d_fpu_bubble=1,
            be_rse_bubble=1, be_flush_bubble=1, back_end_bubble_fe=1,
        )
        acc = CycleAccount("a", counters)
        assert sum(acc.share(b) for b in BUCKETS) == pytest.approx(1.0)


class TestAccountTable:
    def test_table_layout(self):
        base = _account("base", unstalled=100, be_exe_bubble=50)
        variant = _account("var", unstalled=101, be_exe_bubble=40)
        text = format_account_table(base, variant)
        lines = text.splitlines()
        assert lines[0].split()[0] == "bucket"
        assert any("be_exe_bubble" in l and "-20.0%" in l for l in lines)
        assert any(l.startswith("TOTAL") for l in lines)
        assert lines[-1].startswith("ozq-full %")

    def test_bucket_appearing_from_zero_renders_as_new(self):
        base = _account("base", unstalled=100)
        variant = _account("var", unstalled=100, be_exe_bubble=40)
        text = format_account_table(base, variant)
        row = next(
            l for l in text.splitlines() if l.startswith("be_exe_bubble")
        )
        assert row.endswith("new")
        assert "inf" not in row


class TestGainTable:
    def test_empty(self):
        assert format_gain_table({}) == "(no results)"

    def test_multi_column_alignment(self):
        class FakeResult:
            def __init__(self, gains, geo):
                self.gains = gains
                self.geomean_gain = geo

        results = {
            "a": FakeResult({"x.bench": 1.234, "y.bench": -0.5}, 0.3),
            "b": FakeResult({"x.bench": 2.0, "y.bench": 0.0}, 1.0),
        }
        text = format_gain_table(results, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x.bench" in lines[2]
        assert lines[-1].startswith("Geomean")
        # every data row carries one cell per column
        assert lines[2].count("%") == 2


class TestExperimentDeterminism:
    def test_same_seed_same_result(self):
        from repro.config import baseline_config
        from repro.core import Experiment
        from repro.workloads import benchmark_by_name

        bench = benchmark_by_name("464.h264ref")
        a = Experiment([bench], seed=3).run_benchmark(bench, baseline_config())
        b = Experiment([bench], seed=3).run_benchmark(bench, baseline_config())
        assert a.total_cycles == b.total_cycles

    def test_different_seed_different_streams(self):
        from repro.config import baseline_config
        from repro.core import Experiment
        from repro.workloads import benchmark_by_name

        bench = benchmark_by_name("429.mcf")
        a = Experiment([bench], seed=3).run_benchmark(bench, baseline_config())
        b = Experiment([bench], seed=4).run_benchmark(bench, baseline_config())
        assert a.total_cycles != b.total_cycles
