"""Integration checks of the paper's evaluation *shapes* (Sec. 4).

These run single benchmarks (not whole suites) to stay fast; the full
suite sweeps live in benchmarks/.  Each test pins a qualitative result the
paper reports:

* 429.mcf gains double digits from HLO-directed hints despite its 2.3-
  iteration hot loop, via k=2-style clustering of the delinquent field
  loads (Sec. 4.4);
* 464.h264ref regresses badly without a trip-count threshold and is
  rescued by n=32 (Sec. 4.2);
* 177.mesa's train/ref mismatch defeats the threshold but not the
  HLO-directed hints (Sec. 4.2/4.3);
* 445.gobmk only loses without PGO, when the static profile pipelines
  and boosts its tiny cache-resident loops (Sec. 4.3).
"""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core import Experiment
from repro.workloads import benchmark_by_name


def _exp(*names):
    return Experiment([benchmark_by_name(n) for n in names], seed=7)


def _l3(n, pgo=True):
    return CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3, trip_count_threshold=n,
        pgo=pgo, name=f"l3-n{n}-{pgo}",
    )


def _hlo(pgo=True):
    return CompilerConfig(
        hint_policy=HintPolicy.HLO, trip_count_threshold=32,
        pgo=pgo, name=f"hlo-{pgo}",
    )


class TestMcf:
    def test_hlo_gain_double_digit(self):
        exp = _exp("429.mcf")
        res = exp.compare(baseline_config(), _hlo())
        assert res.gains["429.mcf"] > 8.0

    def test_refresh_loop_pipelined_and_boosted(self):
        exp = _exp("429.mcf")
        run = exp.run_config(_hlo())["429.mcf"]
        refresh = run.loops[0].compiled
        assert refresh.pipelined
        stats = refresh.stats
        assert stats.boosted_loads == 2  # the two field loads
        assert stats.critical_loads == 1  # node = node->child

    def test_loop_level_speedup_band(self):
        """Sec. 4.4 reports ~40% for the loop itself."""
        exp = _exp("429.mcf")
        base = exp.run_config(baseline_config())["429.mcf"]
        var = exp.run_config(_hlo())["429.mcf"]
        loop_gain = (
            base.loops[0].cycles / var.loops[0].cycles - 1.0
        ) * 100.0
        assert 25.0 < loop_gain < 90.0


class TestH264ref:
    def test_regression_without_threshold(self):
        exp = _exp("464.h264ref")
        res = exp.compare(baseline_config(), _l3(0))
        assert res.gains["464.h264ref"] < -10.0

    def test_threshold_rescues(self):
        exp = _exp("464.h264ref")
        res = exp.compare(baseline_config(), _l3(32))
        assert res.gains["464.h264ref"] == pytest.approx(0.0, abs=0.5)

    def test_hlo_hints_never_fire(self):
        """Linear L1-resident loads prefetch fine: no hints, no cost."""
        exp = _exp("464.h264ref")
        res = exp.compare(baseline_config(), _hlo())
        assert res.gains["464.h264ref"] == pytest.approx(0.0, abs=0.5)


class TestMesa:
    def test_headroom_loss_persists_across_thresholds(self):
        """Trains at 154 iterations, runs at 8: every threshold <= 64
        passes, and the boosted stages hurt (Sec. 4.2)."""
        exp = _exp("177.mesa")
        for n in (0, 32, 64):
            res = exp.compare(baseline_config(), _l3(n))
            assert res.gains["177.mesa"] < -8.0, f"n={n}"

    def test_hlo_hints_remove_the_loss(self):
        exp = _exp("177.mesa")
        res = exp.compare(baseline_config(), _hlo())
        assert res.gains["177.mesa"] == pytest.approx(0.0, abs=0.5)


class TestGobmk:
    def test_with_pgo_not_pipelined_no_loss(self):
        exp = _exp("445.gobmk")
        res = exp.compare(baseline_config(), _hlo())
        assert res.gains["445.gobmk"] == pytest.approx(0.0, abs=0.5)
        run = exp.run_config(_hlo())["445.gobmk"]
        assert not run.loops[0].compiled.pipelined

    def test_without_pgo_loss_persists(self):
        """The Sec. 4.3 worst case: wrong trip count *and* wrong latency
        estimate."""
        exp = _exp("445.gobmk")
        base = baseline_config(pgo=False)
        res = exp.compare(base, _hlo(pgo=False))
        assert res.gains["445.gobmk"] < -2.0
        run = exp.run_config(_hlo(pgo=False))["445.gobmk"]
        assert run.loops[0].compiled.pipelined
        assert run.loops[0].compiled.stats.boosted_loads > 0


class TestNamd:
    def test_fp_gather_gains(self):
        exp = _exp("444.namd")
        res = exp.compare(baseline_config(), _hlo())
        assert res.gains["444.namd"] > 6.0

    def test_gain_survives_without_pgo(self):
        """Load latency information compensates for missing trip counts
        (Sec. 3.1, Fig. 9)."""
        exp = _exp("444.namd")
        res = exp.compare(baseline_config(pgo=False), _hlo(pgo=False))
        assert res.gains["444.namd"] > 6.0


class TestPrefetchInteraction:
    def test_disabling_prefetch_raises_headroom(self):
        """Sec. 4.2: without software prefetching the headroom grows."""
        exp = _exp("462.libquantum")
        with_pf = exp.compare(
            baseline_config(), _l3(32)
        ).gains["462.libquantum"]
        exp2 = _exp("462.libquantum")
        no_pf_base = baseline_config(prefetch=False)
        no_pf_l3 = _l3(32).with_(prefetch=False, name="l3-nopf")
        without_pf = exp2.compare(no_pf_base, no_pf_l3).gains["462.libquantum"]
        assert without_pf > with_pf
