"""Top-level library: the compiler driver, theory, and experiments.

:class:`~repro.core.compiler.LoopCompiler` is the public entry point: it
runs HLO (prefetching + hint marking), the latency-tolerant pipeliner, and
register allocation under one :class:`~repro.config.CompilerConfig`.
The experiment module reruns the paper's Sec. 4 evaluations on the
synthetic SPEC-archetype suite.
"""

from repro.core.theory import (
    coverage_ratio,
    stall_reduction_percent,
    clustering_factor,
    additional_latency_for_clustering,
    fig5_series,
)
from repro.core.compiler import CompiledLoop, LoopCompiler
from repro.core.experiment import (
    BenchmarkResult,
    ExperimentResult,
    Experiment,
    percent_gain,
)
from repro.core.accounting import (
    CycleAccount,
    accumulate_account,
    cycle_identity_residual,
    verify_cycle_identity,
)
from repro.core.diagram import pipeline_diagram, stage_table
from repro.core.reporting import format_gain_table, format_account_table
from repro.core.statistics import (
    RegisterStatistics,
    register_statistics,
    format_register_table,
)

__all__ = [
    "coverage_ratio",
    "stall_reduction_percent",
    "clustering_factor",
    "additional_latency_for_clustering",
    "fig5_series",
    "CompiledLoop",
    "LoopCompiler",
    "BenchmarkResult",
    "ExperimentResult",
    "Experiment",
    "percent_gain",
    "CycleAccount",
    "accumulate_account",
    "cycle_identity_residual",
    "verify_cycle_identity",
    "pipeline_diagram",
    "stage_table",
    "format_gain_table",
    "format_account_table",
    "RegisterStatistics",
    "register_statistics",
    "format_register_table",
]
