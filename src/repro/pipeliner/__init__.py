"""Software pipeliner: iterative modulo scheduling with latency tolerance.

This package is the paper's primary contribution.  The flow (Sec. 3.3):

1. compute the Resource II and, with *base* load latencies, the
   Recurrence II;
2. classify loads as critical / non-critical: a load is *critical* when
   boosting all loads on one of its recurrence cycles to their expected
   (hint-derived) latencies would push that cycle's II bound beyond the
   likely II — those loads keep their base latencies;
3. iteratively modulo-schedule from Min II upward, querying the machine
   model with the critical/non-critical flag per load;
4. allocate rotating registers; on failure first drop the non-critical
   latencies back to base *at the same II*, then climb to higher IIs.
"""

from repro.pipeliner.bounds import IIBounds, compute_bounds
from repro.pipeliner.criticality import Criticality, classify_loads
from repro.pipeliner.mrt import ModuloReservationTable
from repro.pipeliner.schedule import Schedule, LoadPlacement
from repro.pipeliner.scheduler import modulo_schedule
from repro.pipeliner.kernel import Kernel, generate_kernel
from repro.pipeliner.stats import PipelineStats
from repro.pipeliner.driver import PipelineResult, pipeline_loop
from repro.pipeliner.optimal import (
    SolveOutcome,
    SolveStatus,
    optimal_pipeline_loop,
    solve_ii,
)

__all__ = [
    "IIBounds",
    "compute_bounds",
    "Criticality",
    "classify_loads",
    "ModuloReservationTable",
    "Schedule",
    "LoadPlacement",
    "modulo_schedule",
    "Kernel",
    "generate_kernel",
    "PipelineStats",
    "PipelineResult",
    "pipeline_loop",
    "SolveOutcome",
    "SolveStatus",
    "optimal_pipeline_loop",
    "solve_ii",
]
