"""Micro-benchmarks of the core components (real timing rounds).

These are not paper figures; they track the toolkit's own performance:
modulo scheduling, DDG construction, cache accesses, and simulated
iterations per second.
"""

import numpy as np
import pytest

from benchmarks.conftest import base_cfg
from repro.config import baseline_config
from repro.core.compiler import LoopCompiler
from repro.ddg import build_ddg
from repro.pipeliner import classify_loads, compute_bounds, modulo_schedule
from repro.sim import MemorySystem, simulate_loop
from repro.sim.cache import Cache, CacheConfig
from repro.workloads.loops import stencil_fp, stream_int


@pytest.fixture(scope="module")
def big_loop():
    loop, layout = stream_int("micro", streams=6, working_set=1 << 20,
                              reuse=True)
    loop.trip_count.estimate = 1000.0
    return loop, layout


def test_micro_ddg_construction(benchmark, big_loop):
    loop, _ = big_loop
    ddg = benchmark(build_ddg, loop)
    assert ddg.edges


def test_micro_modulo_schedule(benchmark, machine, big_loop):
    loop, _ = big_loop
    ddg = build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    crit = classify_loads(ddg, machine, bounds)

    def run():
        return modulo_schedule(ddg, machine, bounds.min_ii, crit)

    sched = benchmark(run)
    assert sched is not None


def test_micro_full_compile(benchmark, machine):
    def run():
        loop, _ = stencil_fp("micro2", taps=5)
        loop.trip_count.estimate = 1000.0
        return LoopCompiler(machine, base_cfg()).compile(loop)

    compiled = benchmark(run)
    assert compiled.result.pipelined


def test_micro_cache_access(benchmark):
    cache = Cache(CacheConfig("b", size=256 * 1024, line_size=128,
                              associativity=8))
    addrs = np.random.default_rng(1).integers(0, 1 << 22, size=4096)

    def run():
        hits = 0
        for a in addrs:
            if cache.lookup(int(a), 0.0) is None:
                cache.fill(int(a), 0.0)
            else:
                hits += 1
        return hits

    benchmark(run)


def test_micro_simulated_iterations(benchmark, machine, big_loop):
    loop, layout = big_loop
    compiled = LoopCompiler(machine, base_cfg()).compile(loop)

    def run():
        return simulate_loop(
            compiled.result, machine, layout, [1000],
            memory=MemorySystem(machine.timings),
            backend="interp",
        )

    result = benchmark(run)
    assert result.total_iterations == 1000


def test_micro_simulated_iterations_fast(benchmark, machine, big_loop):
    """Same workload through the compiled replayer (see docs/sim.md)."""
    loop, layout = big_loop
    compiled = LoopCompiler(machine, base_cfg()).compile(loop)
    # warm the kernel so one-time codegen stays out of the timing rounds
    simulate_loop(compiled.result, machine, layout, [1000],
                  memory=MemorySystem(machine.timings), backend="fast")

    def run():
        return simulate_loop(
            compiled.result, machine, layout, [1000],
            memory=MemorySystem(machine.timings),
            backend="fast",
        )

    result = benchmark(run)
    assert result.backend == "fast"
    assert result.total_iterations == 1000
