"""Whole-loop simulation across invocations.

Adds the per-invocation fixed costs around the kernel (Sec. 2.2/4.5):

* prolog/epilog spill and fill instructions from static register pressure;
* register stack engine (RSE) traffic proportional to the stacked frame —
  "a side effect of the increased number of allocated stacked registers,
  which are automatically spilled and filled by this hardware engine";
* a pipeline flush at loop exit (the back-edge misprediction) and a small
  front-end refill.

Cache and TLB state persist across invocations of the same loop, so
short-trip loops with temporal reuse (the h264ref/gobmk scenarios) run
warm, exactly the situation where boosting latencies buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SimBackend
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult
from repro.sim.address import AddressMap, LoopStreams, StreamSpec, build_streams
from repro.sim.core import ExecutionSetup, prepare_execution, run_iterations
from repro.sim.counters import PerfCounters
from repro.sim.fastpath import (
    compile_kernel,
    fast_machine_supported,
    fast_replay_supported,
    run_invocations_fast,
)
from repro.sim.memory import MemorySystem

#: cycles of RSE activity per stacked register per invocation
RSE_CYCLES_PER_REG = 0.20
#: pipeline flush on loop exit (back-edge misprediction)
FLUSH_CYCLES = 8.0
#: front-end refill after the flush
FRONTEND_CYCLES = 4.0
#: cycles per spill/fill instruction pair in prolog/epilog
SPILL_CYCLES = 3.0


@dataclass
class LoopRunResult:
    """Aggregate outcome of simulating one loop workload."""

    loop_name: str
    cycles: float
    counters: PerfCounters
    invocations: int
    total_iterations: int
    #: backend that actually executed the run ("interp" or "fast"); the
    #: fast backend silently downgrades to the interpreter for runs it
    #: cannot replay (traces, instrumented memory systems)
    backend: str = SimBackend.INTERP.value

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles / max(1, self.total_iterations)


def simulate_loop(
    result: PipelineResult,
    machine: ItaniumMachine,
    layout: dict[str, StreamSpec],
    trip_counts: list[int] | np.ndarray,
    memory: MemorySystem | None = None,
    seed: int = 11,
    address_map: AddressMap | None = None,
    counters: PerfCounters | None = None,
    sink=None,
    backend: SimBackend | str | None = None,
) -> LoopRunResult:
    """Run a compiled loop for the given per-invocation trip counts.

    ``sink`` (a :class:`repro.trace.events.TraceSink`) receives the
    structured event stream; it is attached to the memory system only
    after the cache pre-warm so one-time warm-up fills stay out of
    traces.  ``sink=None`` keeps the run event-free and bit-identical
    to an untraced one.

    ``backend`` picks the simulator implementation (default
    :data:`repro.config.DEFAULT_SIM_BACKEND`).  The fast backend falls
    back to the interpreter automatically for runs it cannot replay —
    traced runs, instrumented memory systems, and machines whose queue
    discipline or scoreboard policy the code generator does not model —
    and both backends are bit-identical, so the choice never changes any
    result (the fallback is recorded as ``backend="interp"``).
    """
    counters = counters if counters is not None else PerfCounters()
    memory = memory or machine.memory_system()
    setup = prepare_execution(result, machine)
    backend = SimBackend.parse(backend)
    use_fast = (
        backend is SimBackend.FAST
        and fast_machine_supported(machine)
        and fast_replay_supported(memory, sink)
    )
    kernel = compile_kernel(setup) if use_fast else None

    trips = [int(t) for t in trip_counts]
    total_iters = sum(trips)
    reuse_spaces = {s for s, spec in layout.items() if spec.reuse}
    # streams for reused spaces are indexed from 0 each invocation, so the
    # array only needs max(trips); streaming spaces need the running total
    max_trips = max(trips) if trips else 0
    stream_len = max(total_iters, max_trips)
    streams = build_streams(
        result.loop,
        layout,
        stream_len,
        seed=seed,
        address_map=address_map,
    )
    # split shared stream table into reuse (restarting) vs streaming refs
    restart_uids = {
        uid
        for inst in result.loop.body
        if inst.memref is not None
        for uid in [inst.memref.uid]
        if inst.memref.space in reuse_spaces
    }

    _prewarm_resident_regions(result, layout, streams, memory)
    if sink is not None:
        memory.sink = sink

    spills = result.static.spills if result.static is not None else 0
    stacked = result.static.stacked_frame if result.static is not None else 8

    cycle = 0.0
    if use_fast:
        # the whole invocation sequence replays in one generated call:
        # fixed costs are accounted inline in this loop's exact order,
        # and per-reference restart multipliers replace the
        # interpreter's mixed-stream views
        cycle = run_invocations_fast(
            kernel,
            streams,
            trips,
            memory,
            machine.ozq_capacity,
            counters,
            cycle,
            frozenset(restart_uids),
            overhead=spills * SPILL_CYCLES,
            rse=stacked * RSE_CYCLES_PER_REG,
            flush=FLUSH_CYCLES,
            fe=FRONTEND_CYCLES,
            spill_instr=2 * spills,
        )
        counters.invocations += len(trips)
    else:
        running_base = 0
        for n in trips:
            # per-invocation fixed costs
            overhead = 0.0
            if spills:
                overhead += spills * SPILL_CYCLES
                counters.spill_instructions += 2 * spills
            rse = stacked * RSE_CYCLES_PER_REG
            counters.be_rse_bubble += rse
            counters.be_flush_bubble += FLUSH_CYCLES
            counters.back_end_bubble_fe += FRONTEND_CYCLES
            counters.unstalled += overhead
            cycle += overhead + rse + FLUSH_CYCLES + FRONTEND_CYCLES

            cycle = _run_invocation(
                setup,
                streams,
                restart_uids,
                running_base,
                n,
                memory,
                machine.ozq_capacity,
                counters,
                cycle,
                sink,
                queue=machine.queue,
                scoreboard=machine.scoreboard,
            )
            running_base += n
            counters.invocations += 1

    if sink is not None:
        memory.sink = None

    return LoopRunResult(
        loop_name=result.loop.name,
        cycles=cycle,
        counters=counters,
        invocations=len(trips),
        total_iterations=total_iters,
        backend=(SimBackend.FAST if use_fast else SimBackend.INTERP).value,
    )


def _prewarm_resident_regions(
    result: PipelineResult,
    layout: dict[str, StreamSpec],
    streams: LoopStreams,
    memory: MemorySystem,
    max_lines: int = 250_000,
) -> None:
    """Pre-touch reused regions so they start cache-resident.

    Spaces with ``reuse=True`` model data the program revisits across
    invocations (lookup tables, small blocks, board state); in steady
    state those are warm, and measuring their one-time cold fill would
    swamp the per-iteration behaviour the experiments compare.  Streaming
    spaces (``reuse=False``) stay cold, as in reality.
    """
    line = memory.l2.config.line_size
    seen: set[int] = set()
    for inst in result.loop.body:
        ref = inst.memref
        if ref is None:
            continue
        spec = layout.get(ref.space)
        if spec is None or not spec.reuse:
            continue
        stream = streams.by_ref.get(ref.uid)
        if stream is None:
            continue
        for addr in np.unique(stream // line):
            if addr in seen or len(seen) >= max_lines:
                continue
            seen.add(int(addr))
            memory.load(int(addr) * line, now=-1e9, is_fp=ref.is_fp)


def _run_invocation(
    setup: ExecutionSetup,
    streams: LoopStreams,
    restart_uids: set[int],
    running_base: int,
    n: int,
    memory: MemorySystem,
    ozq_capacity: int,
    counters: PerfCounters,
    cycle: float,
    sink=None,
    queue=None,
    scoreboard=None,
) -> float:
    """One invocation; restarting spaces read from stream position 0."""
    if not restart_uids:
        return run_iterations(
            setup, streams, running_base, n, memory, ozq_capacity, counters,
            cycle, sink, queue, scoreboard,
        )
    if len(restart_uids) == len(streams.by_ref):
        return run_iterations(
            setup, streams, 0, n, memory, ozq_capacity, counters, cycle,
            sink, queue, scoreboard,
        )
    # mixed: give restarting refs a view shifted to the invocation start
    mixed = LoopStreams(lookahead=streams.lookahead)
    for uid, arr in streams.by_ref.items():
        if uid in restart_uids:
            mixed.by_ref[uid] = arr
        else:
            mixed.by_ref[uid] = arr[running_base:]
    return run_iterations(
        setup, mixed, 0, n, memory, ozq_capacity, counters, cycle,
        sink, queue, scoreboard,
    )
