"""Tests for iterative modulo scheduling, including property-based checks.

Every schedule returned by the scheduler is verified against all DDG
constraints (``Schedule.verify`` runs inside ``modulo_schedule``); the
tests here additionally check resource legality, II optimality on known
loops, and robustness on randomly generated loop bodies.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ddg import build_ddg
from repro.ir import LoopBuilder
from repro.ir.memref import AccessPattern, LatencyHint
from repro.ir.opcodes import UnitClass
from repro.machine import ItaniumMachine
from repro.pipeliner import classify_loads, compute_bounds, modulo_schedule
from repro.pipeliner.scheduler import list_schedule, list_schedule_length


def _schedule(loop, machine, ii=None, boost=False):
    ddg = build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    crit = classify_loads(ddg, machine, bounds)
    if not boost:
        crit = crit.demote_all()
    return modulo_schedule(ddg, machine, ii or bounds.min_ii, crit)


def _assert_resources_legal(schedule, machine):
    """No row may exceed the unit capacities or issue width."""
    caps = machine.resources.capacities
    per_row: dict[int, dict] = {}
    for inst in schedule.loop.body:
        row = schedule.row_of(inst)
        counts = per_row.setdefault(row, {"issue": 0, UnitClass.M: 0,
                                          UnitClass.I: 0, UnitClass.F: 0})
        counts["issue"] += 1
        unit = inst.opcode.unit
        if unit in (UnitClass.M, UnitClass.I, UnitClass.F):
            counts[unit] += 1
    for row, counts in per_row.items():
        budget = machine.resources.issue_width
        if row == schedule.ii - 1:
            budget -= 1  # the implicit branch
        assert counts["issue"] <= budget
        assert counts[UnitClass.M] <= caps[UnitClass.M] + 2  # A-type pool
        assert counts[UnitClass.F] <= caps[UnitClass.F]


class TestModuloScheduler:
    def test_running_example_ii1(self, running_example, machine):
        sched = _schedule(running_example, machine)
        assert sched is not None
        assert sched.ii == 1
        assert sched.stage_count == 3
        sched.verify()

    def test_boosted_example_grows_stages_not_ii(self, running_example, machine):
        running_example.body[0].memref.hint = LatencyHint.L3
        sched = _schedule(running_example, machine, boost=True)
        assert sched.ii == 1
        # d = 20 extra cycles at II=1 -> 20 more stages
        assert sched.stage_count == 23
        assert sched.load_use_distance(running_example.body[0]) == 21

    def test_infeasible_ii_returns_none(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        loop = b.build("red")
        assert _schedule(loop, machine, ii=2) is None  # RecII = 4
        assert _schedule(loop, machine, ii=4) is not None

    def test_resource_constrained_loop(self, machine):
        b = LoopBuilder()
        vals = []
        for i in range(6):
            ref = b.memref(f"a{i}", stride=4, space=f"s{i}")
            vals.append(b.load("ld4", b.live_greg(f"p{i}"), ref, post_inc=4))
        out = vals[0]
        for v in vals[1:]:
            out = b.alu("add", out, v)
        ref = b.memref("c", stride=4)
        b.store("st4", b.live_greg("pc"), out, ref, post_inc=4)
        loop = b.build("six")
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        assert bounds.res_ii == 4  # 7 memory ops on 2 M ports
        sched = _schedule(loop, machine)
        assert sched is not None and sched.ii == 4
        _assert_resources_legal(sched, machine)

    def test_dependences_across_iterations(self, machine):
        """omega-1 edges allow the consumer to sit 'before' the producer."""
        b = LoopBuilder()
        node = b.live_greg("node")
        fref = b.memref("f", pattern=AccessPattern.POINTER_CHASE, size=8)
        val = b.load("ld8", node, fref)
        b.alu_imm("adds", val, 1)
        cref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8,
                        space="n2")
        b.load_into("ld8", node, node, cref)
        sched = _schedule(b.build("mcf"), machine)
        assert sched is not None
        sched.verify()

    def test_all_ops_scheduled_exactly_once(self, running_example, machine):
        sched = _schedule(running_example, machine)
        assert set(sched.times) == set(running_example.body)


class TestListScheduler:
    def test_running_example_length(self, running_example, machine):
        # ld(1) ; add(1) ; st -> 3 cycles per iteration
        assert list_schedule_length(build_ddg(running_example), machine) == 3

    def test_respects_resources(self, machine):
        b = LoopBuilder()
        vals = []
        for i in range(4):
            ref = b.memref(f"a{i}", stride=4, space=f"s{i}")
            vals.append(b.load("ld4", b.live_greg(f"p{i}"), ref, post_inc=4))
        loop = b.build("l", validate=False)
        times = list_schedule(build_ddg(loop), machine)
        by_cycle: dict[int, int] = {}
        for inst, t in times.items():
            by_cycle[t] = by_cycle.get(t, 0) + 1
        assert all(n <= 2 for n in by_cycle.values())  # 2 M ports

    def test_carried_latency_extends_length(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        loop = b.build("red")
        # fadd result must be ready next iteration: >= 4 after the fadd
        assert list_schedule_length(build_ddg(loop), machine) >= 10


@st.composite
def random_loops(draw):
    """Random but well-formed single-block loops."""
    b = LoopBuilder()
    n_streams = draw(st.integers(1, 3))
    values = []
    for i in range(n_streams):
        fp = draw(st.booleans())
        ref = b.memref(
            f"a{i}", stride=8 if fp else 4, size=8 if fp else 4,
            is_fp=fp, space=f"s{i}",
        )
        if draw(st.booleans()):
            ref.hint = draw(st.sampled_from(
                [LatencyHint.NONE, LatencyHint.L2, LatencyHint.L3]))
        mnemonic = "ldfd" if fp else "ld4"
        values.append(
            b.load(mnemonic, b.live_greg(f"p{i}"), ref, post_inc=ref.stride)
        )
    n_alu = draw(st.integers(0, 6))
    int_vals = [v for v in values if v.rclass.name == "GR"]
    for _ in range(n_alu):
        pool = int_vals or [b.live_greg("z")]
        src = draw(st.sampled_from(pool))
        int_vals.append(b.alu_imm("adds", src, 1))
    if draw(st.booleans()) and int_vals:
        out = b.memref("c", stride=4, space="out")
        b.store("st4", b.live_greg("pc"), int_vals[-1], out, post_inc=4)
    return b.build("rand")


class TestSchedulerProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_loops())
    def test_min_ii_schedules_verify(self, loop):
        machine = ItaniumMachine()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        for ii in range(bounds.min_ii, bounds.min_ii + 3):
            sched = modulo_schedule(ddg, machine, ii, crit)
            if sched is not None:
                sched.verify()  # raises on any violated dependence
                _assert_resources_legal(sched, machine)
                break
        else:
            pytest.fail("no schedule found within MinII+2")

    @settings(max_examples=30, deadline=None)
    @given(random_loops())
    def test_boosting_never_shrinks_load_use_distance(self, loop):
        machine = ItaniumMachine()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        base = modulo_schedule(ddg, machine, bounds.min_ii, crit.demote_all())
        boosted = modulo_schedule(ddg, machine, bounds.min_ii, crit)
        if base is None or boosted is None:
            return
        for load in loop.loads:
            if load in crit.boosted:
                d_base = base.load_use_distance(load)
                d_boost = boosted.load_use_distance(load)
                if d_base is not None and d_boost is not None:
                    assert d_boost >= machine.expected_load_latency(load)
