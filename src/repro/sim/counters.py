"""Performance counters mirroring the Itanium 2 cycle-accounting buckets.

Fig. 10 of the paper decomposes CPU2006 runtime into microarchitectural
states measured with HP Caliper; the simulator maintains the same buckets:

* ``unstalled``           — cycles the in-order pipeline issues normally;
* ``be_exe_bubble``       — back-end stalls waiting for (memory) data,
  i.e. the stall-on-use cycles latency-tolerant scheduling attacks;
* ``be_l1d_fpu_bubble``   — stalls from the L1D/FPU pipeline, dominated
  here by a full OzQ (``ozq_full_cycles`` is the matching sub-counter);
* ``be_rse_bubble``       — register stack engine spill/fill traffic;
* ``be_flush_bubble``     — pipeline flushes (branch mispredictions);
* ``back_end_bubble_fe``  — front-end starvation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Cycle-accounting and event counters for one simulation run."""

    unstalled: float = 0.0
    be_exe_bubble: float = 0.0
    be_l1d_fpu_bubble: float = 0.0
    be_rse_bubble: float = 0.0
    be_flush_bubble: float = 0.0
    back_end_bubble_fe: float = 0.0

    ozq_full_cycles: float = 0.0
    #: use-stall cycles covered by load-delay tracking (ldt machines);
    #: overlapped with independent work, so NOT part of any cycle bucket
    ldt_hidden_cycles: float = 0.0
    #: speculative-LSQ ordering violations and the replay cycles they
    #: cost; the cycles are charged into ``be_flush_bubble``
    slsq_replays: int = 0
    slsq_replay_cycles: float = 0.0
    #: demand loads by satisfying level: {1: L1D, 2: L2, 3: L3, 4: memory}
    loads_by_level: dict[int, int] = field(default_factory=dict)
    prefetches_issued: int = 0
    #: prefetches dropped because the OzQ was full (hints are discarded)
    prefetches_dropped_ozq: int = 0
    kernel_iterations: int = 0
    source_iterations: int = 0
    invocations: int = 0
    spill_instructions: int = 0
    #: stall-on-use cycles attributed to the stalling consumer, keyed by
    #: "loopname#index:mnemonic" — diagnostic for tests and tuning
    stall_by_consumer: dict[str, float] = field(default_factory=dict)

    def attribute_stall(self, consumer: str, cycles: float) -> None:
        self.stall_by_consumer[consumer] = (
            self.stall_by_consumer.get(consumer, 0.0) + cycles
        )

    @property
    def total_cycles(self) -> float:
        return (
            self.unstalled
            + self.be_exe_bubble
            + self.be_l1d_fpu_bubble
            + self.be_rse_bubble
            + self.be_flush_bubble
            + self.back_end_bubble_fe
        )

    @property
    def stall_cycles(self) -> float:
        return self.total_cycles - self.unstalled

    def record_load_level(self, level: int) -> None:
        self.loads_by_level[level] = self.loads_by_level.get(level, 0) + 1

    def merge(self, other: "PerfCounters") -> None:
        self.unstalled += other.unstalled
        self.be_exe_bubble += other.be_exe_bubble
        self.be_l1d_fpu_bubble += other.be_l1d_fpu_bubble
        self.be_rse_bubble += other.be_rse_bubble
        self.be_flush_bubble += other.be_flush_bubble
        self.back_end_bubble_fe += other.back_end_bubble_fe
        self.ozq_full_cycles += other.ozq_full_cycles
        self.ldt_hidden_cycles += other.ldt_hidden_cycles
        self.slsq_replays += other.slsq_replays
        self.slsq_replay_cycles += other.slsq_replay_cycles
        for level, count in other.loads_by_level.items():
            self.loads_by_level[level] = (
                self.loads_by_level.get(level, 0) + count
            )
        self.prefetches_issued += other.prefetches_issued
        self.prefetches_dropped_ozq += other.prefetches_dropped_ozq
        self.kernel_iterations += other.kernel_iterations
        self.source_iterations += other.source_iterations
        self.invocations += other.invocations
        self.spill_instructions += other.spill_instructions
        for key, cycles in other.stall_by_consumer.items():
            self.stall_by_consumer[key] = (
                self.stall_by_consumer.get(key, 0.0) + cycles
            )

    def scaled(self, factor: float) -> "PerfCounters":
        """A copy with all cycle buckets multiplied by ``factor``."""
        out = PerfCounters(
            unstalled=self.unstalled * factor,
            be_exe_bubble=self.be_exe_bubble * factor,
            be_l1d_fpu_bubble=self.be_l1d_fpu_bubble * factor,
            be_rse_bubble=self.be_rse_bubble * factor,
            be_flush_bubble=self.be_flush_bubble * factor,
            back_end_bubble_fe=self.back_end_bubble_fe * factor,
            ozq_full_cycles=self.ozq_full_cycles * factor,
            ldt_hidden_cycles=self.ldt_hidden_cycles * factor,
            slsq_replay_cycles=self.slsq_replay_cycles * factor,
        )
        out.loads_by_level = dict(self.loads_by_level)
        return out

    def summary(self) -> str:
        total = self.total_cycles or 1.0
        parts = [f"total={total:.0f}"]
        for name in (
            "unstalled",
            "be_exe_bubble",
            "be_l1d_fpu_bubble",
            "be_rse_bubble",
            "be_flush_bubble",
            "back_end_bubble_fe",
        ):
            value = getattr(self, name)
            parts.append(f"{name}={value:.0f} ({100 * value / total:.1f}%)")
        return " ".join(parts)
