"""Content-addressed on-disk cache for compile + simulate outcomes.

A cache entry is addressed by the SHA-256 of a canonical JSON description
of everything the outcome depends on: the loop IR text, the memory-space
layout, the dataset distributions, the :class:`~repro.config.CompilerConfig`
knobs, the machine/memory parameters, and the dataset seed (the key
material is assembled in :func:`repro.harness.jobs.loop_run_key`).  Because
the whole pipeline is deterministic, two runs with the same key produce
bit-identical cycles and counters — so serving the second from disk is
behaviour-preserving, and repeated sweeps cost one JSON read per cell.

Entries are JSON files under ``root/<k[:2]>/<k>.json``.  Writes go through
a temporary file plus :func:`os.replace`, so concurrent pool workers can
share one cache directory without torn reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: bump when the payload layout or key material changes incompatibly
CACHE_FORMAT_VERSION = 1


def hash_key(material: dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``material``."""
    canonical = json.dumps(
        material, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counts observed by one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """A directory of content-addressed JSON artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        A corrupt or partially-written file counts as a miss; the entry
        will simply be recomputed and rewritten.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["data"]

    def put(self, key: str, data: dict) -> None:
        """Store ``data`` under ``key`` (atomic, last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_FORMAT_VERSION, "key": key, "data": data}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # --- maintenance -----------------------------------------------------
    def entries(self) -> list[tuple[str, float]]:
        """All stored ``(key, mtime)`` pairs, oldest first.

        Keys are recovered from the file names (they are content hashes,
        so the name *is* the key); in-flight temporaries are excluded.
        """
        if not self.root.is_dir():
            return []
        found: list[tuple[str, float]] = []
        for path in self.root.glob("*/*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                found.append((path.stem, path.stat().st_mtime))
            except OSError:  # racing eviction from another process
                continue
        found.sort(key=lambda kv: (kv[1], kv[0]))
        return found

    def delete(self, key: str) -> bool:
        """Drop one entry; ``True`` when something was removed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries until at most ``max_entries`` remain.

        Long-running fuzzing campaigns write one entry per case, so an
        unbounded cache directory grows forever; callers bound it with a
        periodic prune.  Returns the number of entries removed.  Safe
        under concurrent writers: eviction races count as already-gone.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        stored = self.entries()
        removed = 0
        for key, _mtime in stored[: max(0, len(stored) - max_entries)]:
            if self.delete(key):
                removed += 1
        return removed
