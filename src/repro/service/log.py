"""Structured request/event log: one JSON object per line.

The service appends a line per HTTP request (method, path, status,
latency, request key when one was derived) and per lifecycle event
(startup, job completion, shutdown), so a running server is observable
with ``tail -f`` + ``jq`` and machine-parsable in CI.  Lines go to a file
when the server was started with ``--log``, to stderr otherwise; write
failures are swallowed after the first warning — logging must never take
the service down.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path


class RequestLog:
    """An append-only JSON-lines sink for service events."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path else None
        self._fh = None
        self._broken = False
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    def event(self, event: str, **fields) -> None:
        """Append one event line; never raises."""
        if self._broken:
            return
        record = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "event": event,
        }
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
            if self._fh is not None:
                self._fh.write(line + "\n")
                self._fh.flush()
            else:
                print(line, file=sys.stderr)
        except (OSError, ValueError):
            self._broken = True
            print("repro.service: request log broken, disabling",
                  file=sys.stderr)

    def request(self, method: str, path: str, status: int,
                duration_s: float, **fields) -> None:
        self.event(
            "http",
            method=method,
            path=path,
            status=status,
            ms=round(duration_s * 1000.0, 3),
            **fields,
        )

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
