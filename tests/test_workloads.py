"""Tests for the synthetic workload suite."""

import pytest

from repro.config import baseline_config
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import TripDistribution
from repro.ir.validate import validate_loop
from repro.workloads import (
    TEMPLATES,
    benchmark_by_name,
    cpu2000_suite,
    cpu2006_suite,
)
from repro.workloads.datasets import DataSet
from repro.workloads.loops import gather, pointer_chase, stream_int


class TestTemplates:
    @pytest.mark.parametrize("name", sorted(TEMPLATES))
    def test_templates_build_valid_loops(self, name):
        loop, layout = TEMPLATES[name].build()
        validate_loop(loop)
        spaces = {i.memref.space for i in loop.body if i.memref is not None}
        assert spaces <= set(layout), f"{name}: missing StreamSpec"

    @pytest.mark.parametrize("name", sorted(TEMPLATES))
    def test_templates_compile(self, name, machine):
        loop, _ = TEMPLATES[name].build()
        loop.trip_count.estimate = 1000.0
        compiled = LoopCompiler(machine, baseline_config()).compile(loop)
        assert compiled.result.stats.ii >= 1

    def test_factories_return_fresh_ir(self):
        a, _ = stream_int("s")
        b, _ = stream_int("s")
        assert a.body[0] is not b.body[0]
        assert a.body[0].memref.uid != b.body[0].memref.uid

    def test_gather_fp_variant(self):
        loop, _ = gather("g", fp=True)
        data = next(i for i in loop.loads if i.memref.name == "data")
        assert data.is_fp and data.mnemonic == "ldfd"

    def test_pointer_chase_shape(self):
        """Field loads first (off-cycle), chase last (on-cycle)."""
        loop, _ = pointer_chase("m", field_loads=2)
        assert loop.body[-1].defs == loop.body[-1].uses  # self-recurrent
        assert loop.body[0].is_load and not loop.body[0].post_increment


class TestDataSets:
    def test_steady(self):
        ds = DataSet.steady(42)
        assert ds.train.average() == ds.ref.average() == 42

    def test_mismatch(self):
        ds = DataSet.mismatch(154, 8)
        assert ds.train.average() == 154
        assert ds.ref.average() == 8

    def test_variable(self):
        ds = DataSet.variable(1, 4)
        assert ds.ref.average() == 2.5

    def test_bimodal(self):
        ds = DataSet.bimodal(2, 100, p_low=0.9)
        assert ds.ref.average() == pytest.approx(0.9 * 2 + 0.1 * 100)


class TestSuites:
    def test_suite_sizes(self):
        assert len(cpu2006_suite()) == 29
        assert len(cpu2000_suite()) == 26

    def test_unique_names(self):
        names = [b.name for b in cpu2006_suite() + cpu2000_suite()]
        assert len(names) == len(set(names))

    def test_all_loops_build_and_validate(self):
        for bench in cpu2006_suite() + cpu2000_suite():
            for lw in bench.loops:
                loop, layout = lw.build()
                validate_loop(loop)
                assert lw.invocations >= 1

    def test_benchmark_by_name(self):
        bench = benchmark_by_name("429.mcf")
        assert bench.suite == "CPU2006"
        assert len(bench.loops) == 2
        with pytest.raises(KeyError):
            benchmark_by_name("999.nope")

    def test_paper_archetypes_present(self):
        mesa = benchmark_by_name("177.mesa")
        lw = mesa.loops[0]
        assert lw.data.train.average() > 100
        assert lw.data.ref.average() < 10

        gobmk = benchmark_by_name("445.gobmk")
        assert gobmk.loops[0].data.ref.average() < 2  # not pipelined w/ PGO

        h264 = benchmark_by_name("464.h264ref")
        assert h264.loops[0].data.ref.average() == 10


class TestPredicatedWorkloads:
    def test_predicated_chase_compiles_and_runs(self, machine):
        """Qualifying predicates (post-if-conversion IR) flow through the
        whole stack: DDG edges from the cmp, scheduling, allocation and
        simulation."""
        import numpy as np

        from repro.config import CompilerConfig, HintPolicy
        from repro.core.compiler import LoopCompiler
        from repro.hlo.profiles import TripDistribution, collect_block_profile
        from repro.sim import MemorySystem, simulate_loop
        from repro.workloads.loops import pointer_chase

        loop, layout = pointer_chase("pred", heap=1 << 22, predicated=True)
        cmp_inst = next(i for i in loop.body if i.mnemonic == "cmp")
        field = next(i for i in loop.body if i.is_load and i.qual_pred)
        assert field.qual_pred in cmp_inst.defs

        profile = collect_block_profile(
            {"pred": TripDistribution(kind="uniform", low=1, high=4)}
        )
        cfg = CompilerConfig(hint_policy=HintPolicy.HLO,
                             trip_count_threshold=32)
        compiled = LoopCompiler(machine, cfg).compile(loop, profile)
        assert compiled.pipelined
        assert compiled.stats.boosted_loads >= 2

        rng = np.random.default_rng(3)
        trips = TripDistribution(kind="uniform", low=1, high=4).sample(
            rng, 100
        )
        run = simulate_loop(
            compiled.result, machine, layout, list(trips),
            memory=MemorySystem(machine.timings),
        )
        assert run.cycles > 0
