"""Exact modulo scheduling: branch-and-bound over row/stage variables.

The heuristic scheduler (:mod:`repro.pipeliner.scheduler`) is fast but
carries no optimality certificate: every SA2xx/SA3xx check proves its
schedules *valid*, never *minimal*.  This module closes that gap with a
deterministic, pure-Python exact scheduler in the spirit of Roorda's SMT
formulation (PAPERS.md), specialised to the repository's machine model
so it needs no external solver:

* every operation's schedule time decomposes as ``t = r + II*s`` with a
  *row* ``r in [0, II)`` and a *stage* ``s >= 0``;
* the search branches only on rows, in height-priority order; for a
  partial row assignment the stage variables form a system of integer
  difference constraints ``s_j - s_i >= ceil((D[i][j] - (r_j - r_i))/II)``
  derived from the MinDist matrix, kept transitively closed
  incrementally — a positive cycle prunes the branch *exactly* (the
  relaxation is complete, so pruning never loses a feasible schedule);
* rows are charged against the real :class:`ModuloReservationTable`
  (including the implicit loop branch in the last row) plus a Hall-style
  counting bound: unassigned demand per unit class — with A-type ops
  pooled over I+M and every op consuming an issue slot — must fit the
  remaining row capacity;
* interchangeable *twins* (same unit class, identical MinDist rows and
  columns under index swap) are ordered by body index, collapsing the
  factorially many permutations of e.g. parallel accumulator chains;
* a completed assignment takes the componentwise-minimal stages (longest
  paths in the constraint closure), so the returned schedule has the
  fewest stages — and thereby the lowest register pressure — of any
  schedule over those rows.

Determinism is absolute: the search is a pure function of the DDG, the
latency policy, the resource model and a *node budget* — there is no
wall clock anywhere, because one would break byte-identical replay (and
the repository's ND00x self-lint).  "Time cap" in the docs always means
this node budget.  When the budget runs out the per-II verdict is
``UNKNOWN`` and the driver degrades gracefully while still reporting a
*certified* lower bound: the smallest II not proven infeasible.
Infeasibility at the base-latency policy certifies the II for every
policy of the driver's ladder, since boosting only adds constraints.

:func:`optimal_pipeline_loop` mirrors :func:`~repro.pipeliner.driver
.pipeline_loop` — same criticality gates, same boosted-then-demoted
retry ladder, same profitability cap — so heuristic-vs-optimal gaps
measure the scheduler and nothing else.  At every (II, policy) step
where the exact schedule is missing or fails register allocation, the
driver retries with the heuristic scheduler at that same II, which
structurally guarantees ``optimal_ii <= heuristic_ii`` and termination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.config import CompilerConfig
from repro.ddg.cycles import ExpectedFn
from repro.ddg.edges import LatencyQuery
from repro.ddg.graph import DDG
from repro.ddg.mindist import NO_PATH, mindist_matrix
from repro.errors import RegisterAllocationError
from repro.ir.loop import Loop
from repro.ir.opcodes import UnitClass
from repro.machine.itanium2 import ItaniumMachine
from repro.machine.resources import ResourceModel
from repro.pipeliner import driver as _driver
from repro.pipeliner.bounds import compute_bounds
from repro.pipeliner.driver import PipelineResult, resolve_criticality
from repro.pipeliner.kernel import generate_kernel
from repro.pipeliner.mrt import ModuloReservationTable
from repro.pipeliner.schedule import Schedule
from repro.pipeliner.scheduler import list_schedule_length, modulo_schedule
from repro.pipeliner.stats import PipelineStats
from repro.regalloc.nonrotating import allocate_static
from repro.regalloc.rotating import allocate_rotating


class SolveStatus(enum.Enum):
    """Outcome of one per-II exact feasibility search."""

    FEASIBLE = "feasible"  #: a schedule was found (and is returned)
    INFEASIBLE = "infeasible"  #: the search space was exhausted: a proof
    UNKNOWN = "unknown"  #: the node budget ran out before either


@dataclass
class SolveOutcome:
    """Result of :func:`solve_ii`: verdict, times, and nodes spent."""

    status: SolveStatus
    #: instruction -> schedule time with ``min(t) == 0``, only when
    #: :attr:`status` is :attr:`SolveStatus.FEASIBLE`
    times: dict | None
    #: search nodes consumed — one per attempted (op, row) placement
    nodes: int


class _BudgetExhausted(Exception):
    """Internal: the node budget ran out mid-search."""


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _twin_tie_breaks(
    raw: np.ndarray, units: list[UnitClass]
) -> list[tuple[int, int]]:
    """Symmetry-breaking pairs ``t_a <= t_b`` for interchangeable ops.

    Two ops are twins when they share a unit class and swapping them is
    an automorphism of the MinDist matrix; within a maximal *clique* of
    mutual twins, sorting the ops' times maps feasible schedules to
    feasible schedules (the mutual MinDist entries are equal, hence
    ``<= 0`` because the diagonal admits no positive entry), so
    restricting the search to body-index order loses nothing.  Returns
    the adjacent pairs of each clique.
    """
    n = raw.shape[0]

    def twin(a: int, b: int) -> bool:
        if units[a] is not units[b]:
            return False
        if raw[a, b] != raw[b, a]:
            return False
        for k in range(n):
            if k == a or k == b:
                continue
            if raw[a, k] != raw[b, k] or raw[k, a] != raw[k, b]:
                return False
        return True

    ties: list[tuple[int, int]] = []
    used: set[int] = set()
    for a in range(n):
        if a in used:
            continue
        clique = [a]
        for b in range(a + 1, n):
            if b not in used and all(twin(x, b) for x in clique):
                clique.append(b)
        if len(clique) > 1:
            used.update(clique)
            ties.extend(zip(clique, clique[1:]))
    return ties


def solve_ii(
    ddg: DDG,
    ii: int,
    query: LatencyQuery,
    expected: ExpectedFn,
    resources: ResourceModel,
    budget: int,
) -> SolveOutcome:
    """Exact feasibility of ``ii`` for ``ddg`` under one latency policy.

    Complete: :attr:`SolveStatus.INFEASIBLE` is a proof that *no* legal
    modulo schedule at ``ii`` exists for this policy on this resource
    model.  Deterministic: the verdict, the returned times and the node
    count are pure functions of the arguments.  ``budget`` bounds the
    number of attempted (op, row) placements; on exhaustion the verdict
    is :attr:`SolveStatus.UNKNOWN`.

    Returned times are canonical (``min(t) == 0``) so that wrapping them
    in a :class:`Schedule` performs no shift: a shift that is not a
    multiple of II would rotate rows past the branch reservation in the
    last MRT row.  Restricting the search to canonical completions loses
    nothing — any feasible schedule, normalised, is found again as its
    own row assignment with componentwise-minimal stages.
    """
    order_nodes = ddg.nodes
    n = len(order_nodes)
    if n == 0:
        return SolveOutcome(SolveStatus.FEASIBLE, {}, 0)
    for i, inst in enumerate(order_nodes):
        if inst.index != i:  # pragma: no cover - builder invariant
            raise ValueError("DDG nodes are not body-indexed")

    raw = mindist_matrix(ddg, ii, query, expected, check=False)
    if np.any(np.diagonal(raw) > 0):
        # II below the recurrence bound of this latency policy
        return SolveOutcome(SolveStatus.INFEASIBLE, None, 0)

    units = [inst.opcode.unit for inst in order_nodes]
    # impose the twin order as ordinary 0-weight constraints, then
    # re-close so the search sees them through the same matrix
    ties = _twin_tie_breaks(raw, units)
    if ties:
        raw = raw.copy()
        for a, b in ties:
            raw[a, b] = max(raw[a, b], 0.0)
        for k in range(n):
            via = raw[:, k : k + 1] + raw[k : k + 1, :]
            np.maximum(raw, via, out=raw)
        if np.any(np.diagonal(raw) > 0):  # pragma: no cover - twin
            # mutual weights are symmetric hence <= 0: tie-breaks
            # cannot create a positive cycle
            return SolveOutcome(SolveStatus.INFEASIBLE, None, 0)
    dist: list[list[int | None]] = [
        [None if raw[i, j] == NO_PATH else int(raw[i, j]) for j in range(n)]
        for i in range(n)
    ]

    # height-priority search order: most-constrained ops first
    height = [
        max((d for d in dist[i] if d is not None), default=0) for i in range(n)
    ]
    order = sorted(range(n), key=lambda i: (-height[i], i))

    # resource-free ASAP times (column maxima of the closure): trying an
    # op's rows from its ASAP row outward keeps the first-found schedule
    # close to ASAP, i.e. with few stages and low register pressure
    asap = [
        max(
            (dist[j][i] for j in range(n) if dist[j][i] is not None),
            default=0,
        )
        for i in range(n)
    ]
    row_order = [
        [(max(0, asap[i]) + d) % ii for d in range(ii)] for i in range(n)
    ]

    # --- resource state --------------------------------------------------
    mrt = ModuloReservationTable(ii, resources)
    cap_left = {u: c * ii for u, c in resources.capacities.items()}
    cap_left[UnitClass.B] -= 1  # the implicit loop branch
    issue_left = resources.issue_width * ii - 1
    remaining: dict[UnitClass, int] = {u: 0 for u in UnitClass}
    for u in units:
        remaining[u] += 1
    rem_total = n

    def hall_ok() -> bool:
        if rem_total > issue_left:
            return False
        pooled = (
            remaining[UnitClass.M]
            + remaining[UnitClass.I]
            + remaining[UnitClass.A]
        )
        if pooled > cap_left[UnitClass.M] + cap_left[UnitClass.I]:
            return False
        for u in (UnitClass.M, UnitClass.I, UnitClass.F, UnitClass.B):
            if remaining[u] > cap_left[u]:
                return False
        return True

    if not hall_ok():  # below the resource bound
        return SolveOutcome(SolveStatus.INFEASIBLE, None, 0)

    rows: list[int | None] = [None] * n
    budget_left = budget
    nodes = 0

    def stage_weight(i: int, j: int) -> int | None:
        d = dist[i][j]
        if d is None:
            return None
        return _ceil_div(d - (rows[j] - rows[i]), ii)

    def extend_closure(
        L: list[list[int | None]], placed: list[int], k: int
    ) -> list[list[int | None]] | None:
        """The stage closure with ``k`` added; ``None`` on a positive cycle."""
        win: dict[int, int | None] = {}
        wout: dict[int, int | None] = {}
        for i in placed:
            best = stage_weight(i, k)
            back = stage_weight(k, i)
            for j in placed:
                lij = L[i][j]
                if lij is not None:
                    wjk = stage_weight(j, k)
                    if wjk is not None and (best is None or lij + wjk > best):
                        best = lij + wjk
                lji = L[j][i]
                if lji is not None:
                    wkj = stage_weight(k, j)
                    if wkj is not None and (back is None or wkj + lji > back):
                        back = wkj + lji
            win[i] = best
            wout[i] = back
            if best is not None and back is not None and best + back > 0:
                return None
        child = [row[:] for row in L]
        for i in placed:
            child[i][k] = win[i]
            child[k][i] = wout[i]
        for i in placed:
            wi = win[i]
            if wi is None:
                continue
            row_i = child[i]
            for j in placed:
                wj = wout[j]
                if wj is None:
                    continue
                via = wi + wj
                cur = row_i[j]
                if cur is None or via > cur:
                    row_i[j] = via
        return child

    def search(
        depth: int, L: list[list[int | None]], placed: list[int]
    ) -> dict | None:
        nonlocal budget_left, nodes, issue_left, rem_total
        if depth == n:
            # componentwise-minimal stages: longest path into each op
            stage = [0] * n
            for i in range(n):
                best = 0
                for j in range(n):
                    v = L[j][i]
                    if v is not None and v > best:
                        best = v
                stage[i] = best
            times = {order_nodes[i]: rows[i] + ii * stage[i] for i in range(n)}
            if min(times.values()) != 0:
                # non-canonical completion; its canonical representative
                # is reached under a different row assignment
                return None
            return times
        k = order[depth]
        inst = order_nodes[k]
        uk = units[k]
        for r in row_order[k]:
            if budget_left <= 0:
                raise _BudgetExhausted
            budget_left -= 1
            nodes += 1
            if not mrt.fits(inst, r):
                continue
            rows[k] = r
            child = extend_closure(L, placed, k)
            if child is None:
                rows[k] = None
                continue
            mrt.place(inst, r)
            charged = mrt._placed[inst][1]
            if charged is not UnitClass.NONE:
                cap_left[charged] -= 1
            issue_left -= 1
            remaining[uk] -= 1
            rem_total -= 1
            found = None
            if hall_ok():
                placed.append(k)
                found = search(depth + 1, child, placed)
                placed.pop()
            rem_total += 1
            remaining[uk] += 1
            issue_left += 1
            if charged is not UnitClass.NONE:
                cap_left[charged] += 1
            mrt.remove(inst)
            rows[k] = None
            if found is not None:
                return found
        return None

    empty: list[list[int | None]] = [[None] * n for _ in range(n)]
    try:
        times = search(0, empty, [])
    except _BudgetExhausted:
        return SolveOutcome(SolveStatus.UNKNOWN, None, nodes)
    if times is None:
        return SolveOutcome(SolveStatus.INFEASIBLE, None, nodes)
    return SolveOutcome(SolveStatus.FEASIBLE, times, nodes)


def _allocate(schedule: Schedule, machine: ItaniumMachine):
    """Rotating + static allocation and the kernel, or ``None``."""
    try:
        rotating = allocate_rotating(schedule, machine)
    except RegisterAllocationError:
        return None
    static = allocate_static(schedule, rotating.used)
    kernel = generate_kernel(schedule, rotating)
    return rotating, static, kernel


def optimal_pipeline_loop(
    loop: Loop,
    machine: ItaniumMachine,
    config: CompilerConfig | None = None,
) -> PipelineResult:
    """Pipeline ``loop`` with the exact scheduler (Sec. 3.3 ladder).

    Identical gates and retry ladder to :func:`pipeline_loop`; at each
    (II, policy) step the exact search runs first and the heuristic
    scheduler is the fallback.  The returned stats carry the optimality
    metadata: ``optimal_status`` ("optimal" when the achieved II equals
    the certified lower bound, "capped" when the node budget or register
    allocation left a possible gap, "infeasible" when no II up to the
    profitability cap admits a schedule), ``ii_lower_bound`` and
    ``solver_nodes``.
    """
    config = config or CompilerConfig()
    ddg = _driver.build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    seq_length = list_schedule_length(ddg, machine)
    criticality = resolve_criticality(loop, ddg, machine, bounds, config)

    max_ii = max(bounds.min_ii, seq_length)
    attempts = 0
    latency_fallback = False
    budget_left = config.optimal_budget
    total_nodes = 0
    # smallest II not yet proven unschedulable; advances while every II
    # below the current one is INFEASIBLE under the weakest policy
    lower_bound = bounds.min_ii
    proven_below = True
    query = machine.latency_query

    for ii in range(bounds.min_ii, max_ii + 1):
        tries = [criticality]
        if criticality.boosted:
            tries.append(criticality.demote_all())
        weakest_infeasible = False
        for try_no, crit in enumerate(tries):
            attempts += 1
            outcome = solve_ii(
                ddg, ii, query, crit.expected_fn, machine.resources,
                budget_left,
            )
            budget_left -= outcome.nodes
            total_nodes += outcome.nodes
            if try_no == len(tries) - 1:
                # base latencies are the weakest constraints: proving
                # them infeasible certifies the II for every policy
                weakest_infeasible = outcome.status is SolveStatus.INFEASIBLE

            schedule = None
            artifact = None
            if outcome.status is SolveStatus.FEASIBLE:
                schedule = Schedule(
                    ddg=ddg, ii=ii, times=outcome.times, machine=machine,
                    criticality=crit, attempts=attempts,
                )
                schedule.verify()
                artifact = _allocate(schedule, machine)
            if artifact is None and outcome.status is not SolveStatus.INFEASIBLE:
                # exact schedule missing (budget) or unallocatable: the
                # heuristic retry at this same (II, policy) guarantees
                # we never do worse than pipeline_loop
                fallback = modulo_schedule(
                    ddg, machine, ii, crit, budget_ratio=config.budget_ratio
                )
                if fallback is not None:
                    allocated = _allocate(fallback, machine)
                    if allocated is not None:
                        schedule = fallback
                        artifact = allocated
            if artifact is None:
                continue
            rotating, static, kernel = artifact
            if try_no > 0:
                latency_fallback = True
            stats = _driver._collect_stats(
                loop, bounds, schedule, rotating, static, crit,
                attempts, latency_fallback,
            )
            stats.scheduler = "optimal"
            stats.optimal_status = "optimal" if proven_below else "capped"
            stats.ii_lower_bound = lower_bound
            stats.solver_nodes = total_nodes
            return PipelineResult(
                loop=loop,
                ddg=ddg,
                bounds=bounds,
                pipelined=True,
                stats=stats,
                seq_length=seq_length,
                schedule=schedule,
                kernel=kernel,
                rotating=rotating,
                static=static,
                criticality=crit,
            )
        proven_below = proven_below and weakest_infeasible
        if proven_below:
            lower_bound = ii + 1

    stats = PipelineStats(
        loop_name=loop.name,
        pipelined=False,
        ii=seq_length,
        res_ii=bounds.res_ii,
        rec_ii=bounds.rec_ii,
        attempts=attempts,
        total_loads=len(loop.loads),
        scheduler="optimal",
        optimal_status="infeasible" if proven_below else "capped",
        ii_lower_bound=lower_bound,
        solver_nodes=total_nodes,
    )
    return PipelineResult(
        loop=loop,
        ddg=ddg,
        bounds=bounds,
        pipelined=False,
        stats=stats,
        seq_length=seq_length,
    )
