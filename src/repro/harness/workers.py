"""Supervised worker processes with per-task timeouts and reaping.

:class:`WorkerPool` replaces the bare ``ProcessPoolExecutor`` wherever the
harness needs *per-task* failure isolation: a task that exceeds its
timeout gets its worker terminated and replaced (the old executor kept
the runaway process alive and aborted the whole sweep), a worker that
dies mid-task is detected and respawned, and every task resolves to a
:class:`TaskResult` carrying an ``ok``/``timeout``/``error`` status
instead of tearing down its siblings.

The pool is usable from synchronous code (:func:`run_supervised`, the
engine under :func:`repro.harness.pool.run_tasks`) and from asyncio (the
:mod:`repro.service` server wraps the returned
:class:`concurrent.futures.Future` values with ``asyncio.wrap_future``).

Protocol: each worker loops on a shared task queue and reports
``("start", task_id, pid)`` before running a task and
``("done", task_id, pid, outcome)`` after it, so the supervisor thread
always knows *which* process owns a late task and can kill exactly that
one.  Queue messages ride a feeder thread, which an abrupt worker death
(``os._exit``, a segfault) can outrun — so each worker *also* records its
current task id in a shared-memory slot with a plain store before
executing it.  The slot is what lets the supervisor attribute the
in-flight task of a worker that died without a flushed ``start`` message,
instead of leaving its future unresolved.  Tasks and results travel
through ``multiprocessing`` queues, so
``fn``, payloads and results must be picklable (module-level callables or
``functools.partial`` of one) — the same contract the process pool
already imposed.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass

#: supervisor poll interval: bounds timeout-detection latency
_TICK_S = 0.05
#: grace period between SIGTERM and SIGKILL when reaping a worker
_TERM_GRACE_S = 0.5

TASK_OK = "ok"
TASK_TIMEOUT = "timeout"
TASK_ERROR = "error"


@dataclass
class TaskResult:
    """How one submitted task ended.

    ``status`` is one of :data:`TASK_OK` (``value`` holds the return
    value), :data:`TASK_TIMEOUT` (the worker was killed at the deadline)
    or :data:`TASK_ERROR` (``error`` holds the remote traceback text and
    ``exception`` the re-raisable exception object when it pickled).
    """

    status: str
    value: object = None
    error: str | None = None
    exception: BaseException | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == TASK_OK


def _worker_main(task_queue, result_queue, slots, slot_index) -> None:
    """Worker process body: run tasks until the ``None`` sentinel."""
    while True:
        item = task_queue.get()
        if item is None:
            break
        task_id, fn, payload = item
        pid = os.getpid()
        # the slot is a plain shared-memory store, immune to the queue
        # feeder-thread lag: if this process dies from here on, the
        # supervisor can still attribute the task (+1 so 0 means idle)
        slots[slot_index] = float(task_id + 1)
        # CLOCK_MONOTONIC is system-wide on POSIX, so the supervisor can
        # anchor the deadline at the *actual* start, not at whenever it
        # drains this message
        result_queue.put(("start", task_id, pid, time.monotonic()))
        start = time.perf_counter()
        try:
            value = fn(payload)
            outcome = (True, value, None, time.perf_counter() - start)
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            text = traceback.format_exc()
            try:  # an unpicklable exception must not kill the report
                pickle.dumps(exc)
            except Exception:
                exc = None
            outcome = (False, exc, text, time.perf_counter() - start)
        try:
            result_queue.put(("done", task_id, pid, outcome))
        except Exception:
            # the value itself would not pickle: report the failure instead
            result_queue.put((
                "done", task_id, pid,
                (False, None, "task result was not picklable",
                 time.perf_counter() - start),
            ))
        # cleared only after the "done" message is queued: a crash in the
        # window still attributes (and errors) the task instead of losing it
        slots[slot_index] = 0.0


class WorkerPool:
    """A fixed-size pool of supervised worker processes.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving to a
    :class:`TaskResult`; the future never raises.  A per-task ``timeout``
    (seconds, measured from when a worker *starts* the task) terminates
    and replaces the worker at the deadline, so one runaway job cannot
    wedge the pool or leak a process.  ``on_start`` is invoked from the
    supervisor thread when the task begins executing (the service uses it
    to flip jobs from *queued* to *running*).
    """

    def __init__(self, workers: int, *, name: str = "repro-pool") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context()
        self.workers = workers
        self.name = name
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._futures: dict[int, concurrent.futures.Future] = {}
        self._timeouts: dict[int, float | None] = {}
        self._on_start: dict[int, object] = {}
        #: pid -> (task_id, deadline or None) for tasks being executed
        self._running: dict[int, tuple[int, float | None]] = {}
        self._procs: dict[int, multiprocessing.Process] = {}
        #: crash-attribution slots, one per worker (see _worker_main)
        self._slots = self._ctx.Array("d", workers, lock=False)
        self._slot_of: dict[int, int] = {}  # pid -> slot index
        self._closed = False
        self.reaped = 0  # workers killed at a deadline (observability)
        self.crashed = 0  # workers that died mid-task
        for slot_index in range(workers):
            self._spawn(slot_index)
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True
        )
        self._supervisor.start()

    # --- submission ----------------------------------------------------------
    def submit(
        self,
        fn,
        payload,
        *,
        timeout: float | None = None,
        on_start=None,
    ) -> concurrent.futures.Future:
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            task_id = next(self._ids)
            future: concurrent.futures.Future = concurrent.futures.Future()
            self._futures[task_id] = future
            self._timeouts[task_id] = timeout
            if on_start is not None:
                self._on_start[task_id] = on_start
        self._tasks.put((task_id, fn, payload))
        return future

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet resolved."""
        with self._lock:
            return len(self._futures)

    # --- supervision ---------------------------------------------------------
    def _spawn(self, slot_index: int) -> None:
        self._slots[slot_index] = 0.0
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results, self._slots, slot_index),
            name=f"{self.name}-worker",
            daemon=True,
        )
        proc.start()
        self._procs[proc.pid] = proc
        self._slot_of[proc.pid] = slot_index

    def _supervise(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=_TICK_S)
            except queue_mod.Empty:
                message = None
            with self._lock:
                if message is not None:
                    self._handle_message(message)
                self._reap_expired()
                self._reap_dead()
                if self._closed and not self._futures:
                    return

    def _handle_message(self, message) -> None:
        event, task_id, pid, outcome = message
        if event == "start":
            if task_id not in self._futures:  # already cancelled/reaped
                return
            timeout = self._timeouts.get(task_id)
            deadline = outcome + timeout if timeout else None
            self._running[pid] = (task_id, deadline)
            callback = self._on_start.pop(task_id, None)
            if callback is not None:
                try:
                    callback()
                except Exception:  # pragma: no cover - observer bug
                    pass
            return
        # "done"
        if self._running.get(pid, (None,))[0] == task_id:
            del self._running[pid]
        future = self._futures.pop(task_id, None)
        timeout = self._timeouts.pop(task_id, None)
        if future is None:  # late result of a task reaped at its deadline
            return
        ok, value, error_text, duration = outcome
        if timeout is not None and duration > timeout:
            # the worker beat the reaper to the finish line, but the task
            # still broke its deadline: enforce the timeout consistently
            # (same outcome whether or not the supervisor's tick won)
            future.set_result(TaskResult(
                TASK_TIMEOUT,
                error=f"task exceeded the {timeout}s timeout",
                duration_s=duration,
            ))
            return
        if ok:
            result = TaskResult(TASK_OK, value=value, duration_s=duration)
        else:
            result = TaskResult(
                TASK_ERROR,
                exception=value,
                error=error_text,
                duration_s=duration,
            )
        future.set_result(result)

    def _reap_expired(self) -> None:
        now = time.monotonic()
        for pid in list(self._running):
            task_id, deadline = self._running[pid]
            if deadline is None or now < deadline:
                continue
            del self._running[pid]
            self._kill(pid)
            slot_index = self._slot_of.pop(pid)
            self.reaped += 1
            future = self._futures.pop(task_id, None)
            timeout = self._timeouts.pop(task_id, None)
            self._on_start.pop(task_id, None)
            if future is not None:
                future.set_result(TaskResult(
                    TASK_TIMEOUT,
                    error=f"task exceeded the {timeout}s timeout",
                    duration_s=timeout or 0.0,
                ))
            if not self._closed:
                self._spawn(slot_index)

    def _reap_dead(self) -> None:
        for pid in list(self._procs):
            proc = self._procs[pid]
            if proc.is_alive():
                continue
            del self._procs[pid]
            slot_index = self._slot_of.pop(pid)
            assignment = self._running.pop(pid, None)
            if assignment is not None:
                task_id = assignment[0]
            else:
                # the worker died before its "start" message flushed; the
                # shared-memory slot is the authoritative record
                raw = self._slots[slot_index]
                task_id = int(raw) - 1 if raw else None
            if self._closed:
                continue
            if task_id is not None and task_id in self._futures:
                self.crashed += 1
                future = self._futures.pop(task_id)
                self._timeouts.pop(task_id, None)
                self._on_start.pop(task_id, None)
                future.set_result(TaskResult(
                    TASK_ERROR,
                    error=(
                        "worker died while executing the task "
                        f"(exit code {proc.exitcode})"
                    ),
                ))
            self._spawn(slot_index)

    def _kill(self, pid: int) -> None:
        proc = self._procs.pop(pid, None)
        if proc is None:
            return
        proc.terminate()
        proc.join(_TERM_GRACE_S)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(_TERM_GRACE_S)

    # --- teardown ------------------------------------------------------------
    def close(self, *, grace_s: float = 1.0) -> None:
        """Stop the pool: fail unresolved futures, reap every worker.

        Callers that care about in-flight work must wait on their futures
        *before* closing; ``close`` is deliberately prompt so a service
        shutdown cannot hang behind a stuck task.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task_id, future in list(self._futures.items()):
                future.set_result(TaskResult(
                    TASK_ERROR, error="worker pool closed"
                ))
            self._futures.clear()
            self._timeouts.clear()
            self._on_start.clear()
            self._running.clear()
        for _ in self._procs:
            try:
                self._tasks.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        deadline = time.monotonic() + grace_s
        for pid, proc in list(self._procs.items()):
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                self._kill(pid)
        self._procs.clear()
        self._slot_of.clear()
        self._tasks.close()
        self._supervisor.join(grace_s + _TERM_GRACE_S)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_supervised(
    fn,
    payloads: list,
    *,
    workers: int,
    timeout: float | None = None,
) -> list[TaskResult]:
    """Map ``fn`` over ``payloads`` on a temporary pool, in order.

    Every payload yields a :class:`TaskResult` — a timeout or worker
    crash surfaces as that task's status while the rest of the batch
    completes normally (the behaviour the sweep-level timeout fix needs).
    """
    if workers <= 1:
        results = []
        for payload in payloads:
            start = time.perf_counter()
            try:
                value = fn(payload)
                results.append(TaskResult(
                    TASK_OK, value=value,
                    duration_s=time.perf_counter() - start,
                ))
            except BaseException as exc:  # noqa: BLE001 - recorded
                results.append(TaskResult(
                    TASK_ERROR,
                    exception=exc,
                    error=traceback.format_exc(),
                    duration_s=time.perf_counter() - start,
                ))
        return results
    with WorkerPool(workers) as pool:
        futures = [
            pool.submit(fn, payload, timeout=timeout) for payload in payloads
        ]
        return [future.result() for future in futures]
