"""Heuristic-vs-optimal modulo-scheduling gap measurement.

The exact scheduler (:mod:`repro.pipeliner.optimal`) exists to answer
one question about the paper's iterative heuristic: *how far from
optimal is it?*  This module is the campaign that measures it.  Every
hot loop of the workload suites — and a seeded slice of fuzz-generated
loops — is compiled twice under the same configuration, once per
scheduler, both results run through the full translation validator
(SA1xx–SA6xx), and the per-loop gaps recorded:

* **II gap** — ``heuristic_ii − optimal_ii`` (and the ratio that feeds
  the geomean).  The optimality invariant ``optimal_ii ≤ heuristic_ii``
  is checked on every pair; the exact driver falls back to the
  heuristic schedule whenever the solver is capped or its schedule
  cannot be register-allocated, which makes the invariant structural.
* **stage-count gap** — extra pipeline fill/drain and predicate
  registers the heuristic pays at its II.
* **register gap** — total allocated registers (rotating + static,
  all classes).

Everything here is deterministic: the solver is budgeted in
branch-and-bound *nodes*, not wall-clock, and the report carries no
timestamps — ``fingerprint(report)`` is stable across runs, machines
and ``--jobs`` values, which is what lets CI regenerate the committed
``benchmarks/results/BENCH_optimal_gap.json`` and compare digests.

``tools/bench_optimal_gap.py`` is the CLI; ``tests/test_optimal_gap.py``
holds the tier-1 differential slice.
"""

from __future__ import annotations

import math

from repro.config import DEFAULT_OPTIMAL_BUDGET, CompilerConfig
from repro.harness.cache import hash_key
from repro.harness.pool import run_tasks

#: profile seed shared with the benchmark harness (PGO training runs)
GAP_SEED = 2008
#: fuzz-corpus slice defaults (seed offset keeps clear of nightly ranges)
DEFAULT_FUZZ_CASES = 25
DEFAULT_FUZZ_SEED = 2008


def _registers_total(stats) -> int:
    return sum(stats.registers.values())


def _verify_summary(report) -> dict:
    counts = report.counts()
    return {
        "ok": report.ok,
        "errors": counts["error"],
        "codes": sorted(set(report.codes())),
    }


def _side(compiled, *, optimal: bool) -> dict:
    """One scheduler's half of a gap record, fully verified."""
    from repro.analysis import verify_compiled

    stats = compiled.stats
    side = {
        "pipelined": stats.pipelined,
        "ii": stats.ii,
        "res_ii": stats.res_ii,
        "rec_ii": stats.rec_ii,
        "stage_count": stats.stage_count if stats.pipelined else None,
        "registers": _registers_total(stats) if stats.pipelined else None,
        "verify": _verify_summary(verify_compiled(compiled)),
    }
    if optimal:
        side["status"] = stats.optimal_status
        side["lower_bound"] = stats.ii_lower_bound
        side["nodes"] = stats.solver_nodes
    return side


def _violations(record: dict) -> list[str]:
    """The invariants every (heuristic, optimal) pair must satisfy."""
    heur, opt = record["heuristic"], record["optimal"]
    out = []
    if not heur["verify"]["ok"]:
        out.append("heuristic schedule fails verification")
    if not opt["verify"]["ok"]:
        out.append("optimal schedule fails verification")
    if heur["pipelined"] and not opt["pipelined"]:
        out.append("heuristic pipelined but optimal scheduler did not")
    if heur["pipelined"] and opt["pipelined"]:
        if opt["ii"] > heur["ii"]:
            out.append("optimal II exceeds heuristic II")
        bound = opt["lower_bound"]
        if bound is not None and bound > opt["ii"]:
            out.append("certified lower bound exceeds achieved II")
        if opt["status"] == "optimal" and bound != opt["ii"]:
            out.append("claimed optimal but bound differs from achieved II")
    return out


def measure_loop(loop, machine, budget: int, profile=None) -> dict:
    """Compile ``loop`` with both schedulers; return the gap record."""
    from repro.core.compiler import LoopCompiler

    heur_cfg = CompilerConfig()
    opt_cfg = CompilerConfig(scheduler="optimal", optimal_budget=budget)
    record = {
        "loop": loop.name,
        "machine": machine.name,
        "heuristic": _side(
            LoopCompiler(machine, heur_cfg).compile(loop, profile),
            optimal=False,
        ),
        "optimal": _side(
            LoopCompiler(machine, opt_cfg).compile(loop, profile),
            optimal=True,
        ),
    }
    heur, opt = record["heuristic"], record["optimal"]
    if heur["pipelined"] and opt["pipelined"]:
        record["gaps"] = {
            "ii": heur["ii"] - opt["ii"],
            "ii_ratio": heur["ii"] / opt["ii"],
            "stages": heur["stage_count"] - opt["stage_count"],
            "registers": heur["registers"] - opt["registers"],
        }
    else:
        record["gaps"] = None
    record["violations"] = _violations(record)
    return record


def _run_gap_task(payload: dict) -> list[dict]:
    """Pool worker: one (benchmark | fuzz seed) × machine cell."""
    from repro.machine import build_machine

    machine = build_machine(payload["machine"])
    budget = payload["budget"]
    if payload["kind"] == "bench":
        from repro.harness.jobs import collect_profile
        from repro.workloads import benchmark_by_name

        bench = benchmark_by_name(payload["benchmark"])
        profile = collect_profile(bench, payload["seed"])
        records = []
        for lw in bench.loops:
            loop, _ = lw.build()
            record = measure_loop(loop, machine, budget, profile)
            record["suite"] = bench.suite
            record["benchmark"] = bench.name
            records.append(record)
        return records
    from repro.fuzz import GenConfig, generate_loop

    loop = generate_loop(payload["seed"], GenConfig())
    record = measure_loop(loop, machine, budget)
    record["fuzz_seed"] = payload["seed"]
    return [record]


def _geomean(ratios: list[float]) -> float | None:
    if not ratios:
        return None
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def _machine_summary(records: list[dict]) -> dict:
    pairs = [r for r in records if r["gaps"] is not None]
    opt = [r["optimal"] for r in pairs]
    return {
        "loops": len(records),
        "pipelined_pairs": len(pairs),
        "proven_optimal": sum(1 for o in opt if o["status"] == "optimal"),
        "capped": sum(1 for o in opt if o["status"] == "capped"),
        "ii_gap_total": sum(r["gaps"]["ii"] for r in pairs),
        "ii_gap_max": max((r["gaps"]["ii"] for r in pairs), default=0),
        "ii_geomean_ratio": _geomean([r["gaps"]["ii_ratio"] for r in pairs]),
        "stage_gap_total": sum(r["gaps"]["stages"] for r in pairs),
        "register_gap_total": sum(r["gaps"]["registers"] for r in pairs),
        "solver_nodes": sum(o["nodes"] for o in opt),
        "violations": sum(len(r["violations"]) for r in records),
    }


def fingerprint(report: dict) -> str:
    """Content digest of a gap report (order-insensitive, no volatiles)."""
    return hash_key(
        {k: v for k, v in report.items() if k != "fingerprint"}
    )


def run_gap_campaign(
    suites: tuple[str, ...] = ("micro", "cpu2000", "cpu2006"),
    machines: tuple[str, ...] | None = None,
    budget: int = DEFAULT_OPTIMAL_BUDGET,
    seed: int = GAP_SEED,
    fuzz_cases: int = DEFAULT_FUZZ_CASES,
    fuzz_seed: int = DEFAULT_FUZZ_SEED,
    jobs: int = 1,
) -> dict:
    """The full campaign: suites × machines (+ fuzz slice), summarised.

    Results are independent of ``jobs`` — tasks return in submission
    order and each task is pure in its payload.
    """
    from repro.machine import machine_names
    from repro.workloads import suite_by_name

    names = tuple(machines) if machines else tuple(machine_names())
    payloads = []
    for machine in names:
        for suite in suites:
            for bench in suite_by_name(suite):
                payloads.append({
                    "kind": "bench",
                    "benchmark": bench.name,
                    "machine": machine,
                    "budget": budget,
                    "seed": seed,
                })
        for i in range(fuzz_cases):
            payloads.append({
                "kind": "fuzz",
                "seed": fuzz_seed + i,
                "machine": machine,
                "budget": budget,
            })
    results = run_tasks(_run_gap_task, payloads, workers=jobs)

    loops: list[dict] = []
    fuzz_loops: list[dict] = []
    for payload, records in zip(payloads, results):
        (loops if payload["kind"] == "bench" else fuzz_loops).extend(records)

    summary = {
        machine: {
            "suite": _machine_summary(
                [r for r in loops if r["machine"] == machine]
            ),
            "fuzz": _machine_summary(
                [r for r in fuzz_loops if r["machine"] == machine]
            ),
        }
        for machine in names
    }
    report = {
        "bench": "optimal_gap",
        "seed": seed,
        "budget": budget,
        "suites": list(suites),
        "machines": list(names),
        "fuzz": {"cases": fuzz_cases, "seed": fuzz_seed},
        "loops": loops,
        "fuzz_loops": fuzz_loops,
        "summary": summary,
        "violations": sum(
            len(r["violations"]) for r in loops + fuzz_loops
        ),
    }
    report["fingerprint"] = fingerprint(report)
    return report


def harvestable(record: dict) -> bool:
    """Is this fuzz case worth committing to the regression corpus?

    A gap of more than one II cycle means the heuristic left real
    schedule quality on the table; a capped solve is a hard instance
    for the exact scheduler itself.  Both are the cases the corpus
    should pin (see :mod:`repro.fuzz.gapharvest`).
    """
    gaps = record.get("gaps")
    if gaps is not None and gaps["ii"] > 1:
        return True
    return record["optimal"].get("status") == "capped"
