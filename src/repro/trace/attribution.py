"""Stall attribution: roll the event stream into per-load reports.

The analyzer is itself a :class:`~repro.trace.events.TraceSink`, so it
can run streaming (no event storage — the harness ``--trace`` mode) or
be fed a captured stream via :meth:`StallAttribution.replay`.  It answers
the questions the aggregate ``PerfCounters`` buckets cannot:

* **which load site stalled which use, for how long** — stall-on-use
  cycles attributed to the *culprit* load instance's site (the counters
  only know the stalling consumer);
* **measured latency coverage per load** (Sec. 3.1) — for each load
  instance, the fraction of its runtime latency the schedule actually
  hid: 1.0 when the first use found the value ready, else
  ``(latency - residual wait) / latency``;
* **the clustering histogram** (Sec. 2.1) — how many misses were in
  flight at each stall, i.e. the paper's k: one stall shadows the
  remaining latency of the k-1 others.

Closed accounting (:func:`check_closed_accounting`) guarantees the roll-
up is exhaustive: attributed stall-on-use cycles sum *exactly* to
``be_exe_bubble``, OzQ-full waits to ``be_l1d_fpu_bubble``, full-queue
intervals to ``ozq_full_cycles``, and (when the run total is given) the
bucket sum reproduces the simulated cycles — the same identity
:func:`repro.core.accounting.cycle_identity_residual` checks suite-wide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.accounting import verify_cycle_identity
from repro.sim.counters import PerfCounters
from repro.trace.events import TraceEvent

#: tolerances for the closed-accounting equalities; the analyzer adds the
#: same floats in the same order as the counters, so in practice the
#: sums are bit-identical and these only absorb cross-platform libm noise
REL_TOL = 1e-9
ABS_TOL = 1e-6


@dataclass
class LoadSiteReport:
    """Aggregated behaviour of one static load site across a run."""

    tag: str
    ref: str
    #: demand-load instances issued / with an observed register use
    instances: int = 0
    used: int = 0
    #: uses that found the value not ready (first-use stalls only)
    stalled_uses: int = 0
    #: stall-on-use cycles attributed to this site as the culprit
    stall_cycles: float = 0.0
    latency_total: float = 0.0
    #: numerator/denominator of the measured-coverage mean, over used
    #: instances: sum(min(latency, latency - residual_wait)) / sum(latency)
    covered_latency: float = 0.0
    coverage_latency: float = 0.0
    #: satisfying-level histogram {1: L1D, 2: L2, 3: L3, 4: memory}
    levels: dict[int, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Measured latency coverage in [0, 1] (1.0 = fully hidden)."""
        if self.coverage_latency <= 0.0:
            return 1.0
        return self.covered_latency / self.coverage_latency

    @property
    def mean_latency(self) -> float:
        return self.latency_total / self.instances if self.instances else 0.0

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "ref": self.ref,
            "instances": self.instances,
            "used": self.used,
            "stalled_uses": self.stalled_uses,
            "stall_cycles": float(self.stall_cycles),
            "mean_latency": float(self.mean_latency),
            "coverage": float(self.coverage),
            "levels": {str(level): n for level, n in sorted(self.levels.items())},
        }


class StallAttribution:
    """A streaming sink that folds events into per-load aggregates."""

    wants_issues = False
    wants_uses = True
    wants_stalls = True
    wants_memory = True

    def __init__(self) -> None:
        #: load tag -> per-site aggregate
        self.sites: dict[str, LoadSiteReport] = {}
        #: (slot, source_iter) -> [tag, latency, first_use_seen]
        self._live: dict[tuple[int, int], list] = {}
        self.events = 0
        self.stall_on_use_total = 0.0
        self.stall_by_consumer: dict[str, float] = {}
        #: stall cycles whose culprit instance had no prior LoadIssue
        #: event (defensive: should stay 0.0 for whole-run traces)
        self.unattributed_stall = 0.0
        self.ozq_stall_total = 0.0
        self.ozq_stall_by_op: dict[str, float] = {}
        self.ozq_full_total = 0.0
        #: clustering histogram: k (misses in flight at a stall) -> stalls
        self.clustering: dict[int, int] = {}
        #: and the stall cycles spent at each k
        self.clustering_cycles: dict[int, float] = {}
        self.prefetches_issued = 0
        self.prefetches_dropped = 0

    # --- sink protocol --------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.events += 1
        kind = event.kind
        if kind == "load":
            site = self.sites.get(event.tag)
            if site is None:
                site = self.sites[event.tag] = LoadSiteReport(
                    tag=event.tag, ref=event.ref
                )
            site.instances += 1
            site.latency_total += event.latency
            site.levels[event.level] = site.levels.get(event.level, 0) + 1
            # a new instance of (slot, iter) supersedes any previous one
            # (the same source iteration recurs across invocations)
            self._live[(event.slot, event.source_iter)] = [
                event.tag, event.latency, False,
            ]
        elif kind == "stall":
            wait = event.wait
            self.stall_on_use_total += wait
            self.stall_by_consumer[event.consumer] = (
                self.stall_by_consumer.get(event.consumer, 0.0) + wait
            )
            k = event.inflight
            self.clustering[k] = self.clustering.get(k, 0) + 1
            self.clustering_cycles[k] = (
                self.clustering_cycles.get(k, 0.0) + wait
            )
            live = self._live.get((event.slot, event.source_iter))
            if live is None:
                self.unattributed_stall += wait
                return
            tag, latency, seen = live
            site = self.sites[tag]
            site.stall_cycles += wait
            if not seen:
                live[2] = True
                site.used += 1
                site.stalled_uses += 1
                site.covered_latency += max(0.0, min(latency, latency - wait))
                site.coverage_latency += latency
        elif kind == "use":
            live = self._live.get((event.slot, event.source_iter))
            if live is None or live[2]:
                return
            live[2] = True
            site = self.sites[live[0]]
            site.used += 1
            site.covered_latency += live[1]
            site.coverage_latency += live[1]
        elif kind == "ozq-stall":
            self.ozq_stall_total += event.wait
            self.ozq_stall_by_op[event.tag] = (
                self.ozq_stall_by_op.get(event.tag, 0.0) + event.wait
            )
        elif kind == "ozq-full":
            self.ozq_full_total += event.duration
        elif kind == "prefetch":
            self.prefetches_issued += 1
        elif kind == "prefetch-drop":
            self.prefetches_dropped += 1
        # "issue", "store" and "fill" events carry no attribution weight

    def replay(self, events: list[TraceEvent]) -> "StallAttribution":
        """Feed a captured event list through the analyzer (in order)."""
        for event in events:
            self.emit(event)
        return self

    # --- derived metrics ------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Run-wide measured latency coverage, weighted by latency."""
        num = sum(s.covered_latency for s in self.sites.values())
        den = sum(s.coverage_latency for s in self.sites.values())
        return num / den if den > 0.0 else 1.0

    @property
    def mean_clustering(self) -> float:
        """Mean k over stalls (cycle-weighted): how many misses each
        stall's shadow covered on average."""
        cycles = sum(self.clustering_cycles.values())
        if cycles <= 0.0:
            return 0.0
        return (
            sum(k * c for k, c in self.clustering_cycles.items()) / cycles
        )

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "stall_on_use": float(self.stall_on_use_total),
            "unattributed_stall": float(self.unattributed_stall),
            "ozq_stall": float(self.ozq_stall_total),
            "ozq_full": float(self.ozq_full_total),
            "coverage": float(self.coverage),
            "mean_clustering": float(self.mean_clustering),
            "clustering": {
                str(k): n for k, n in sorted(self.clustering.items())
            },
            "clustering_cycles": {
                str(k): float(c)
                for k, c in sorted(self.clustering_cycles.items())
            },
            "prefetches_issued": self.prefetches_issued,
            "prefetches_dropped": self.prefetches_dropped,
            "stall_by_consumer": {
                tag: float(c)
                for tag, c in sorted(self.stall_by_consumer.items())
            },
            "sites": [
                self.sites[tag].to_dict() for tag in sorted(self.sites)
            ],
        }


@dataclass
class AccountingCheck:
    """Outcome of the closed-accounting invariant."""

    ok: bool
    failures: list[str]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def check_closed_accounting(
    attribution: StallAttribution,
    counters: PerfCounters,
    cycles: float | None = None,
) -> AccountingCheck:
    """Verify the analyzer's roll-up accounts for every counted cycle.

    ``counters`` must come from the *traced* run only (a fresh
    :class:`PerfCounters`, not one merged across untraced loops).  When
    ``cycles`` is given, the suite-wide cycle identity (bubble buckets +
    unstalled == total simulated cycles) is checked too.
    """
    failures: list[str] = []
    if not _close(attribution.stall_on_use_total, counters.be_exe_bubble):
        failures.append(
            f"stall-on-use cycles {attribution.stall_on_use_total!r} != "
            f"be_exe_bubble {counters.be_exe_bubble!r}"
        )
    if not _close(attribution.ozq_stall_total, counters.be_l1d_fpu_bubble):
        failures.append(
            f"OzQ-full stall cycles {attribution.ozq_stall_total!r} != "
            f"be_l1d_fpu_bubble {counters.be_l1d_fpu_bubble!r}"
        )
    if not _close(attribution.ozq_full_total, counters.ozq_full_cycles):
        failures.append(
            f"OzQ-full occupancy {attribution.ozq_full_total!r} != "
            f"ozq_full_cycles {counters.ozq_full_cycles!r}"
        )
    if attribution.unattributed_stall != 0.0:
        failures.append(
            f"{attribution.unattributed_stall!r} stall cycles have no "
            "culprit load instance"
        )
    # per-site stall cycles must sum back to the stall-on-use total
    by_site = sum(s.stall_cycles for s in attribution.sites.values())
    if not _close(
        by_site + attribution.unattributed_stall,
        attribution.stall_on_use_total,
    ):
        failures.append(
            f"per-site stall cycles {by_site!r} do not sum to the "
            f"stall-on-use total {attribution.stall_on_use_total!r}"
        )
    if cycles is not None and not verify_cycle_identity(cycles, counters):
        failures.append(
            f"cycle identity violated: simulated {cycles!r} != "
            f"bucket sum {counters.total_cycles!r}"
        )
    return AccountingCheck(ok=not failures, failures=failures)
