"""Command-line interface.

The subcommands::

    python -m repro compile loop.s --policy hlo        # kernel + stats
    python -m repro simulate loop.s --trips 2000 --invocations 3 \\
        --space a=64M --space b=64M                    # cycles + counters
    python -m repro trace loop.s --trips 1000          # stall attribution,
                                                       # Chrome trace JSON
    python -m repro lint loop.s --format json          # static analysis
    python -m repro lint --suite cpu2006               # validate a suite
    python -m repro experiment --suite cpu2006 --policy hlo -n 32 \\
        --jobs 4 --cache-dir .repro-cache
    python -m repro bench --suite cpu2006 --jobs 8     # parallel sweep
    python -m repro compare runA.json runB.json        # manifest diff
    python -m repro compare runA.json runB.json --fail-on-regression \\
        --tolerance 0.5                                # CI regression gate
    python -m repro fuzz --cases 200 --seed 0 --jobs 4 # oracle fuzzing
    python -m repro fuzz --replay tests/corpus         # corpus replay
    python -m repro machines                           # machine models
    python -m repro fig5                               # the theory curves
    python -m repro serve --workers 4                  # the job server
    python -m repro submit bench --json '{"suite": "micro"}' --wait 600
    python -m repro status                             # server counters
    python -m repro status JOB_ID --wait 60            # one job record

``compile``, ``experiment`` and ``bench`` additionally take ``--verify``,
which runs the :mod:`repro.analysis` translation validator over every
scheduled loop (see ``docs/analysis.md`` for the SAnnn code reference).
``experiment`` and ``bench`` take ``--trace``, which records a per-cell
stall-attribution summary in the run manifest (see ``docs/trace.md``).
``compile``, ``simulate``, ``trace``, ``experiment``, ``bench`` and
``fuzz`` take ``--machine`` to target a registered machine model
(``repro machines`` lists them; see ``docs/machines.md``).

The loop file format is the textual dialect of
:func:`repro.ir.parser.parse_loop` (see examples/loops/ and README).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.errors import ReproError

#: longest suffixes first so ``kb`` wins over ``b``-less ``k``
_SUFFIXES = (
    ("kb", 1 << 10), ("mb", 1 << 20), ("gb", 1 << 30),
    ("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30),
)


def parse_size(text: str) -> int:
    """``64M``/``64mb`` -> 67108864; plain positive integers pass through."""
    raw = text
    text = text.strip().lower()
    factor = 1
    for suffix, suffix_factor in _SUFFIXES:
        if text.endswith(suffix):
            factor = suffix_factor
            text = text[: -len(suffix)]
            break
    try:
        value = int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {raw!r}: expected a number with an optional "
            "K/M/G or KB/MB/GB suffix, e.g. 64M or 512kb"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"invalid size {raw!r}: size must be positive"
        )
    return value


#: valid per-space flags: ``stream`` = cold streaming access, ``reuse`` =
#: resident/pre-warmed (the default when no flag is given)
_SPACE_FLAGS = ("stream", "reuse")


def parse_space(text: str):
    """``name=64M[:stream|:reuse]`` -> (name, StreamSpec).

    ``:stream`` marks a streaming (cold) space; the default is a reused
    (resident, pre-warmed) one.
    """
    from repro.sim.address import StreamSpec

    name, _, rest = text.partition("=")
    name = name.strip()
    if not rest:
        raise argparse.ArgumentTypeError(
            f"expected name=SIZE[:stream|:reuse], got {text!r}"
        )
    if not name:
        raise argparse.ArgumentTypeError(
            f"empty space name in {text!r}: expected name=SIZE[:stream|:reuse]"
        )
    size_text, sep, flag = rest.partition(":")
    if sep and flag not in _SPACE_FLAGS:
        raise argparse.ArgumentTypeError(
            f"unknown space flag {flag!r} in {text!r}: "
            f"expected one of {', '.join(_SPACE_FLAGS)}"
        )
    reuse = flag != "stream"
    return name, StreamSpec(size=parse_size(size_text), reuse=reuse)


def make_config(args: argparse.Namespace) -> CompilerConfig:
    from repro.config import parse_scheduler

    scheduler = parse_scheduler(getattr(args, "scheduler", None))
    extra = {}
    if scheduler != "heuristic":
        extra["scheduler"] = scheduler
    budget = getattr(args, "optimal_budget", None)
    if budget is not None:
        extra["optimal_budget"] = budget
    policy = HintPolicy(args.policy)
    if policy is HintPolicy.BASELINE:
        cfg = baseline_config(pgo=not args.no_pgo, prefetch=not args.no_prefetch)
        return cfg.with_(trip_count_threshold=args.threshold, **extra)
    return CompilerConfig(
        hint_policy=policy,
        trip_count_threshold=args.threshold,
        pgo=not args.no_pgo,
        prefetch=not args.no_prefetch,
        **extra,
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["interp", "fast"],
        default="",
        help="simulator backend (default: the session default, fast); "
             "backends are bit-identical, so results and cache entries "
             "are shared either way",
    )


def _add_machine_arg(parser: argparse.ArgumentParser) -> None:
    from repro.machine import machine_names

    parser.add_argument(
        "--machine",
        choices=machine_names(),
        default="itanium2",
        help="machine model to compile and simulate for "
             "(default: itanium2; see `repro machines`)",
    )


def make_machine(args: argparse.Namespace):
    from repro.machine import build_machine

    return build_machine(getattr(args, "machine", "itanium2"))


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        choices=[p.value for p in HintPolicy],
        default="hlo",
        help="hint policy (default: hlo)",
    )
    parser.add_argument("-n", "--threshold", type=int, default=32,
                        help="trip-count threshold (default: 32)")
    parser.add_argument("--no-pgo", action="store_true",
                        help="use the static profile heuristic")
    parser.add_argument("--no-prefetch", action="store_true",
                        help="disable software prefetching")
    _add_scheduler_args(parser)


def _add_scheduler_args(parser: argparse.ArgumentParser) -> None:
    from repro.config import SCHEDULERS

    parser.add_argument(
        "--scheduler",
        choices=list(SCHEDULERS),
        default="heuristic",
        help="modulo scheduler: the paper's iterative heuristic or the "
             "exact branch-and-bound solver (default: heuristic)",
    )
    parser.add_argument(
        "--optimal-budget", type=int, default=None, metavar="NODES",
        help="node budget per loop for the exact scheduler "
             "(deterministic time cap; default: 200000)",
    )


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop

    text = open(args.loop_file).read()
    loop = parse_loop(text)
    compiled = LoopCompiler(make_machine(args), make_config(args)).compile(loop)
    stats = compiled.stats
    print(stats.summary())
    if compiled.result.kernel is not None:
        print()
        print(compiled.result.kernel.format())
    if args.verbose and compiled.result.schedule is not None:
        print()
        print(compiled.result.schedule.format())
        print()
        for p in stats.placements:
            print(
                f"load {p.load.memref.name}: distance={p.use_distance} "
                f"d={p.additional_latency} "
                f"k={p.clustering_factor(stats.ii)} boosted={p.boosted}"
            )
    if args.verify:
        from repro.analysis import verify_compiled

        report = verify_compiled(compiled)
        print()
        print(f"verification: {'OK' if report.ok else 'FAILED'}")
        if report.findings:
            print(report.render_text())
        if not report.ok:
            return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import DiagnosticReport, lint_loop, verify_compiled
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop
    from repro.machine import ItaniumMachine

    machine = ItaniumMachine()
    config = make_config(args)
    compiler = LoopCompiler(machine, config)
    report = DiagnosticReport()
    linted = 0

    def check(loop, profile=None, layout=None) -> None:
        nonlocal linted
        linted += 1
        findings = lint_loop(loop)
        if findings.ok:
            # clean IR: compile it and translation-validate the full
            # result (the lint re-runs there on the HLO-transformed loop)
            compiled = compiler.compile(loop, profile)
            findings = verify_compiled(compiled)
            if args.bounds:
                from repro.analysis import build_perf_model

                model = build_perf_model(compiled.result, machine, layout)
                lo, up = model.cycle_interval(
                    [max(1, int(loop.average_trips()))]
                )
                up_text = "inf" if up == float("inf") else f"{up:.0f}"
                print(
                    f"bounds {loop.name}: II={model.ii} SC="
                    f"{model.stage_count} cycles/invocation in "
                    f"[{lo:.0f}, {up_text}] zero_stall="
                    f"{model.zero_stall_proof} ozq_zero="
                    f"{model.ozq_zero_proof} bank_provable="
                    f"{model.bank_provable}"
                )
        report.extend(findings)

    for path in args.loop_files:
        check(parse_loop(open(path).read()))

    if args.suite:
        from repro.harness.jobs import collect_profile
        from repro.workloads import suite_by_name

        for bench in suite_by_name(args.suite):
            profile = (
                collect_profile(bench, args.seed) if config.pgo else None
            )
            for lw in bench.loops:
                loop, layout = lw.build()
                check(loop, profile, layout)

    if not linted:
        print("error: nothing to lint (give loop files and/or --suite)",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
        print(f"linted {linted} loop(s): {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop
    from repro.sim import simulate_loop

    machine = make_machine(args)
    loop = parse_loop(open(args.loop_file).read())
    layout = dict(args.space or [])
    missing = {
        i.memref.space for i in loop.body if i.memref is not None
    } - set(layout)
    if missing:
        print(f"error: no --space given for {sorted(missing)}",
              file=sys.stderr)
        return 2
    compiled = LoopCompiler(machine, make_config(args)).compile(loop)
    print(compiled.stats.summary())
    run = simulate_loop(
        compiled.result,
        machine,
        layout,
        [args.trips] * args.invocations,
        memory=machine.memory_system(),
        backend=args.backend or None,
    )
    c = run.counters
    print(f"cycles: {run.cycles:,.0f} "
          f"({run.cycles_per_iteration:.2f}/iteration)")
    print(c.summary())
    if c.loads_by_level:
        levels = {1: "L1D", 2: "L2", 3: "L3", 4: "mem"}
        parts = [f"{levels[k]}={v}" for k, v in sorted(c.loads_by_level.items())]
        print("loads by level:", " ".join(parts))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop
    from repro.sim.address import StreamSpec
    from repro.trace import (
        ascii_timeline,
        render_attribution_text,
        trace_simulation,
        trace_summary,
        write_chrome_trace,
    )

    machine = make_machine(args)
    loop = parse_loop(open(args.loop_file).read())
    layout = dict(args.space or [])
    # unlike `simulate`, unspecified spaces get a usable default (64M
    # streaming) so `repro trace loop.s` works out of the box
    missing = {
        i.memref.space for i in loop.body if i.memref is not None
    } - set(layout)
    for space in sorted(missing):
        layout[space] = StreamSpec(size=64 << 20, reuse=False)
    compiled = LoopCompiler(machine, make_config(args)).compile(loop)
    print(compiled.stats.summary())
    traced = trace_simulation(
        compiled.result,
        machine,
        layout,
        [args.trips] * args.invocations,
        seed=args.seed,
        ring=args.ring,
    )
    run = traced.run
    print(f"cycles: {run.cycles:,.0f} "
          f"({run.cycles_per_iteration:.2f}/iteration), "
          f"{traced.total_events:,} events")
    print()
    print(render_attribution_text(traced.attribution))

    chrome_path = Path(
        args.chrome or Path(args.loop_file).stem + ".trace.json"
    )
    write_chrome_trace(chrome_path, traced.events, label=run.loop_name)
    print(f"chrome trace: {chrome_path}")

    if args.report:
        report = {
            "loop": run.loop_name,
            "cycles": float(run.cycles),
            "iterations": run.total_iterations,
            "summary": trace_summary(traced.attribution, traced.check),
            "attribution": traced.attribution.to_dict(),
        }
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report: {args.report}")

    if args.timeline:
        print()
        print(ascii_timeline(traced.events, width=args.timeline_width))

    # cross-check the run and its stall attribution against the SA5xx
    # static performance bounds: counters inside the cycle interval,
    # per-site stalls at or below their residual-latency budget
    from repro.analysis import build_perf_model

    trips = [args.trips] * args.invocations
    model = build_perf_model(compiled.result, machine, layout)
    bound_report = model.check_counters(trips, run.counters, run.cycles)
    bound_report.extend(model.check_trace_sites(
        trips,
        {
            tag: site.stall_cycles
            for tag, site in traced.attribution.sites.items()
        },
    ))
    if bound_report.ok:
        print("static bounds: OK")
    else:
        print("static bounds: FAILED", file=sys.stderr)
        print(bound_report.render_text(), file=sys.stderr)

    if traced.check.ok:
        print("closed accounting: OK")
        return 0 if bound_report.ok else 1
    print("closed accounting: FAILED", file=sys.stderr)
    for failure in traced.check.failures:
        print(f"  {failure}", file=sys.stderr)
    return 1


def _load_suite(args: argparse.Namespace) -> list | None:
    from repro.workloads import suite_by_name

    suite = suite_by_name(args.suite)
    if args.benchmark:
        suite = [b for b in suite if b.name in args.benchmark]
        if not suite:
            print("error: no matching benchmarks", file=sys.stderr)
            return None
    return suite


def _open_cache(args: argparse.Namespace):
    from repro.harness import ArtifactCache

    if getattr(args, "no_cache", False) or not args.cache_dir:
        return None
    return ArtifactCache(args.cache_dir)


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.core import format_gain_table
    from repro.harness import compare_configs, run_suite

    suite = _load_suite(args)
    if suite is None:
        return 2
    base = baseline_config(pgo=not args.no_pgo, prefetch=not args.no_prefetch)
    variant = make_config(args)
    if variant.scheduler != "heuristic":
        # the scheduler knob applies to both columns so the experiment
        # still isolates the hint policy
        base = base.with_(
            scheduler=variant.scheduler,
            optimal_budget=variant.optimal_budget,
            name=f"{base.name},{variant.scheduler}",
        )
    run = run_suite(
        suite,
        [base, variant],
        machine=make_machine(args),
        seed=args.seed,
        workers=args.jobs,
        cache=_open_cache(args),
        suite_name=args.suite,
        verify=args.verify,
        trace=args.trace,
        backend=args.backend,
    )
    result = compare_configs(run, base.label, variant.label)
    print(format_gain_table(
        {variant.label: result},
        title=f"{args.suite} — {variant.label} vs {base.label}",
    ))
    _report_manifest_trace(run.manifest, args)
    return _report_manifest_verification(run.manifest, args)


def _report_manifest_trace(manifest, args: argparse.Namespace) -> None:
    """Print the one-line trace roll-up for --trace runs."""
    if not getattr(args, "trace", False):
        return
    from repro.trace import merge_trace_summaries

    summaries = [c.trace for c in manifest.cells if c.trace is not None]
    merged = merge_trace_summaries(summaries)
    status = "OK" if merged["ok"] else "FAILED"
    print(
        f"trace: {len(summaries)}/{len(manifest.cells)} cells traced, "
        f"accounting {status}, coverage {100.0 * merged['coverage']:.1f}%, "
        f"mean k {merged['mean_clustering']:.2f}"
    )


def _report_manifest_verification(manifest, args: argparse.Namespace) -> int:
    """Print the verification line and pick the exit code for --verify."""
    if not getattr(args, "verify", False):
        return 0
    print(
        f"verification: {manifest.verified_cells}/{len(manifest.cells)} "
        f"cells verified, {manifest.verify_errors} error(s)"
    )
    if manifest.bounds_checked:
        print(
            f"static bounds: {manifest.bounds_checked} loop run(s) "
            f"checked, {manifest.bounds_violations} violation(s)"
        )
    return 1 if manifest.verify_errors else 0


def _bench_configs(args: argparse.Namespace) -> tuple[CompilerConfig, list]:
    """The baseline plus one variant config per requested policy."""
    from repro.config import parse_scheduler

    scheduler = parse_scheduler(getattr(args, "scheduler", None))
    extra = {}
    if scheduler != "heuristic":
        extra["scheduler"] = scheduler
    budget = getattr(args, "optimal_budget", None)
    if budget is not None:
        extra["optimal_budget"] = budget
    base = baseline_config(pgo=not args.no_pgo, prefetch=not args.no_prefetch)
    if extra:
        # the scheduler knob applies to every column, baseline included,
        # so bench comparisons isolate the hint policy as usual
        base = base.with_(**extra)
        if scheduler != "heuristic":
            base = base.with_(name=f"{base.name},{scheduler}")
    variants = []
    for policy_name in args.config or ["hlo"]:
        policy = HintPolicy(policy_name)
        if policy is HintPolicy.BASELINE:
            continue  # the baseline column is always present
        variants.append(CompilerConfig(
            hint_policy=policy,
            trip_count_threshold=args.threshold,
            pgo=not args.no_pgo,
            prefetch=not args.no_prefetch,
            **extra,
        ))
    return base, variants


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.core import format_gain_table
    from repro.harness import compare_configs, run_suite
    from repro.harness.pool import default_manifest_path, default_workers

    suite = _load_suite(args)
    if suite is None:
        return 2
    base, variants = _bench_configs(args)
    workers = args.jobs if args.jobs is not None else default_workers()
    manifest_path = args.manifest or default_manifest_path(args.suite)
    run = run_suite(
        suite,
        [base] + variants,
        machine=make_machine(args),
        seed=args.seed,
        workers=workers,
        cache=_open_cache(args),
        timeout=args.timeout,
        suite_name=args.suite,
        manifest_path=manifest_path,
        verify=args.verify,
        trace=args.trace,
        backend=args.backend,
    )
    if variants:
        results = {
            variant.label: compare_configs(run, base.label, variant.label)
            for variant in variants
        }
        print(format_gain_table(
            results, title=f"{args.suite} — variants vs {base.label}",
        ))
        print()
    print(run.manifest.summary())
    print(f"manifest: {manifest_path}")
    _report_manifest_trace(run.manifest, args)
    return _report_manifest_verification(run.manifest, args)


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.harness import RunManifest, compare_manifests, format_comparison

    manifest_a = RunManifest.load(args.manifest_a)
    manifest_b = RunManifest.load(args.manifest_b)
    comparison = compare_manifests(manifest_a, manifest_b)
    print(format_comparison(comparison))
    if args.fail_on_regression:
        regressed = comparison.regressions(args.tolerance)
        if regressed:
            for config, gain in regressed.items():
                print(
                    f"regression: {config} geomean {gain:+.2f}% "
                    f"(tolerance {args.tolerance:.2f}%)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"no regressions beyond {args.tolerance:.2f}% "
            f"over {comparison.matched_cells} matched cells"
        )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzOptions, GenConfig, replay_corpus, run_fuzz

    if args.replay:
        summary = replay_corpus(args.replay)
        print(
            f"replayed {summary.cases} corpus case(s) in "
            f"{summary.duration_s:.1f}s: "
            f"{'OK' if summary.ok else f'{len(summary.failures)} FAILED'}"
        )
        for failure in summary.failures:
            for violation in failure.get("violations", []):
                print(
                    f"  {failure.get('name', '?')}: "
                    f"[{violation['oracle']}] {violation['detail']}",
                    file=sys.stderr,
                )
        return 0 if summary.ok else 1

    options = FuzzOptions(
        cases=args.cases,
        seed=args.seed,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        cache_dir=args.cache_dir,
        inject=args.inject,
        machine=args.machine,
        gen=GenConfig(max_ops=args.max_ops),
    )
    summary = run_fuzz(options)
    cached = f", {summary.cache_hits} cached" if summary.cache_hits else ""
    print(
        f"fuzzed {summary.cases} case(s) in {summary.duration_s:.1f}s"
        f"{cached}: "
        f"{'OK' if summary.ok else f'{len(summary.failures)} FAILED'}"
    )
    for failure in summary.failures:
        oracles = sorted({v["oracle"] for v in failure["violations"]})
        ops = failure.get("shrunk_ops")
        shrunk = f", shrunk to {ops} op(s)" if ops is not None else ""
        print(
            f"  seed {failure['seed']}: {', '.join(oracles)}{shrunk}",
            file=sys.stderr,
        )
        for violation in failure["violations"][:2]:
            print(f"    [{violation['oracle']}] {violation['detail']}",
                  file=sys.stderr)
    for path in summary.saved:
        print(f"  saved {path}", file=sys.stderr)
    return 0 if summary.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ServerConfig, serve

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        job_timeout=args.job_timeout,
        cache_dir=args.cache_dir,
        runs_dir=args.runs_dir,
        max_entries=args.max_entries,
        log_path=args.log,
        drain_timeout=args.drain_timeout,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _submit_spec(args: argparse.Namespace) -> dict:
    """The request body from --json / --file / --loop, merged."""
    import json

    spec: dict = {}
    if args.file:
        spec.update(json.loads(open(args.file).read()))
    if args.json:
        spec.update(json.loads(args.json))
    if args.loop:
        spec["loop"] = open(args.loop).read()
    return spec


def _render_result(kind: str, result: dict) -> None:
    """A compact human rendering of one completed job result."""
    if kind == "bench":
        print(result["summary"])
        print(f"fingerprint: {result['fingerprint']}")
        for label, gains in result.get("gains", {}).items():
            if gains:
                mean = sum(gains.values()) / len(gains)
                print(f"  {label}: mean gain {mean:+.1f}% "
                      f"over {len(gains)} benchmark(s)")
    elif kind == "fuzz":
        status = "OK" if result["ok"] else \
            f"{len(result.get('failures', []))} FAILED"
        print(f"fuzzed {result['cases']} case(s): {status}")
    elif kind in ("simulate", "trace"):
        print(result["summary"])
        print(f"cycles: {result['cycles']:,.0f} "
              f"({result['cycles_per_iteration']:.2f}/iteration)")
        if kind == "trace":
            accounting = "OK" if result["ok"] else "FAILED"
            print(f"events: {result['events']:,}, accounting {accounting}")
    else:  # compile
        print(result["summary"])
        verification = result.get("verification")
        if verification is not None:
            print(f"verification: {'OK' if verification['ok'] else 'FAILED'}")


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    spec = _submit_spec(args)

    if "jobs" in spec:  # batch file: {"jobs": [{"kind": ..., ...}, ...]}
        responses = client.submit_batch(spec["jobs"])
        for response in responses:
            job = response["job"]
            note = " (deduped)" if response["deduped"] else \
                " (served from store)" if response["served_from_store"] else ""
            print(f"{job['id'][:16]}  {job['status']:<8} "
                  f"{job['label']}{note}")
        return 0

    if not args.kind:
        print("error: submit needs a job KIND (or a --file with 'jobs')",
              file=sys.stderr)
        return 2
    response = client.submit(args.kind, **spec)
    job = response["job"]
    note = " (deduped)" if response["deduped"] else \
        " (served from store)" if response["served_from_store"] else ""
    print(f"job {job['id']}")
    print(f"status: {job['status']}{note}")
    if args.no_wait:
        return 0
    record = client.wait(job["id"], timeout=args.wait)
    if record["status"] != "done":
        print(f"job {record['status']}: {record.get('error')}",
              file=sys.stderr)
        return 1
    print(f"finished in {record['duration_s']:.2f}s")
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(record["result"], indent=2) + "\n"
        )
        print(f"result: {args.output}")
    _render_result(args.kind, record["result"])
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        if args.wait:
            record = client.wait(args.job_id, timeout=args.wait)
        else:
            record = client.job(args.job_id)
        print(json.dumps(record, indent=2))
        return 0 if record["status"] in ("queued", "running", "done") else 1
    if args.jobs:
        listing = client.jobs()
        for job in listing["jobs"]:
            cached = " cached" if job["cached"] else ""
            dedup = f" dedup={job['dedup_hits']}" if job["dedup_hits"] else ""
            print(f"{job['id'][:16]}  {job['status']:<8} "
                  f"{job['label']}{cached}{dedup}")
        print(f"{len(listing['jobs'])} job(s), {listing['pending']} pending")
        return 0
    if args.cache:
        print(json.dumps(client.cache_stats(), indent=2))
        return 0
    if args.runs:
        for run in client.runs():
            print(f"{run['run_id']}  {run['suite']} seed={run['seed']} "
                  f"cells={run['cells']}  {run['fingerprint'][:16]}")
        return 0
    stats = client.stats()
    jobs = stats["jobs"]
    store = stats["store"]
    print(f"service at {client.base_url}: up {stats['uptime_s']:.0f}s, "
          f"{stats['workers']} worker(s), {stats['pending']} pending")
    print(f"jobs: {jobs['submitted']} submitted, {jobs['executed']} executed, "
          f"{jobs['served_from_store']} from store, {jobs['deduped']} deduped")
    print(f"      {jobs['rejected']} rejected, {jobs['timeouts']} timeout(s), "
          f"{jobs['errors']} error(s)")
    print(f"store: {store['entries']} entries, {store['bytes']:,} bytes, "
          f"{store['hits']} hit(s) / {store['misses']} miss(es), "
          f"{store['evictions']} eviction(s)")
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    import json

    from repro.machine import machine_description, machine_names

    if args.json:
        listing = {
            name: machine_description(name).to_dict()
            for name in machine_names()
        }
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0

    header = (
        f"{'name':<12} {'issue':>5} {'queue':<10} {'cap':>3} "
        f"{'scoreboard':<22} {'window':>6} {'digest':<12}"
    )
    print(header)
    print("-" * len(header))
    for name in machine_names():
        desc = machine_description(name)
        queue = desc.queue
        queue_text = queue.kind
        if queue.kind == "slsq":
            queue_text += f"/ra{queue.runahead}"
        print(
            f"{name:<12} {desc.issue_width:>5} {queue_text:<10} "
            f"{queue.capacity:>3} {desc.scoreboard.kind:<22} "
            f"{desc.scoreboard.tracking_window:>6} {desc.digest()[:12]}"
        )
    print()
    print("select one with --machine on compile / simulate / trace / "
          "experiment / bench / fuzz")
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.core.theory import fig5_series

    series = fig5_series(max_k=args.max_k)
    header = "k " + "".join(f"{c:>10}" for c in series)
    print(header)
    for k in range(1, args.max_k + 1):
        row = f"{k} "
        for c in series:
            row += f"{dict(series[c])[k]:>9.1f}%"
        print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Latency-tolerant software pipelining (CGO 2008) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a loop file")
    p_compile.add_argument("loop_file")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.add_argument("--verify", action="store_true",
                           help="translation-validate the compiled loop")
    _add_config_args(p_compile)
    _add_machine_arg(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: lint loop files / translation-validate suites",
    )
    p_lint.add_argument("loop_files", nargs="*", metavar="LOOP_FILE",
                        help="loop files in the textual IR dialect")
    p_lint.add_argument("--suite", choices=["cpu2006", "cpu2000", "micro"],
                        help="also lint every loop of a workload suite")
    p_lint.add_argument("--format", choices=["text", "json"], default="text",
                        help="finding renderer (default: text)")
    p_lint.add_argument("--bounds", action="store_true",
                        help="print the SA5xx static performance bounds "
                             "(cycle interval, zero-stall / OzQ proofs) "
                             "for every cleanly compiled loop")
    p_lint.add_argument("--seed", type=int, default=2008,
                        help="PGO profile seed for suite loops")
    _add_config_args(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_sim = sub.add_parser("simulate", help="compile and simulate a loop")
    p_sim.add_argument("loop_file")
    p_sim.add_argument("--trips", type=int, default=1000,
                       help="iterations per invocation")
    p_sim.add_argument("--invocations", type=int, default=1)
    p_sim.add_argument(
        "--space", type=parse_space, action="append", metavar="NAME=SIZE",
        help="working-set size per memory space, e.g. a=64M or a=8K:stream",
    )
    _add_config_args(p_sim)
    _add_backend_arg(p_sim)
    _add_machine_arg(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_trace = sub.add_parser(
        "trace",
        help="simulate a loop with cycle-level tracing and stall attribution",
    )
    p_trace.add_argument("loop_file")
    p_trace.add_argument("--trips", type=int, default=1000,
                         help="iterations per invocation")
    p_trace.add_argument("--invocations", type=int, default=1)
    p_trace.add_argument(
        "--space", type=parse_space, action="append", metavar="NAME=SIZE",
        help="working-set size per memory space (unspecified spaces "
             "default to 64M streaming)",
    )
    p_trace.add_argument("--seed", type=int, default=11,
                         help="address-stream seed (default: 11)")
    p_trace.add_argument("--chrome", metavar="PATH",
                         help="Chrome trace-event JSON output "
                              "(default: <loop>.trace.json)")
    p_trace.add_argument("--report", metavar="PATH",
                         help="write the full attribution report as JSON")
    p_trace.add_argument("--timeline", action="store_true",
                         help="print the ASCII kernel timeline")
    p_trace.add_argument("--timeline-width", type=int, default=100,
                         metavar="COLS", help="timeline width in cycles")
    p_trace.add_argument("--ring", type=int, default=None, metavar="N",
                         help="keep only the last N events "
                              "(flight-recorder mode)")
    _add_config_args(p_trace)
    _add_machine_arg(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_exp = sub.add_parser("experiment", help="run a suite comparison")
    p_exp.add_argument("--suite", choices=["cpu2006", "cpu2000", "micro"],
                       default="cpu2006")
    p_exp.add_argument("--benchmark", action="append",
                       help="restrict to specific benchmarks")
    p_exp.add_argument("--seed", type=int, default=2008)
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1, serial)")
    p_exp.add_argument("--cache-dir", metavar="PATH",
                       help="content-addressed artifact cache directory")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="ignore the artifact cache")
    p_exp.add_argument("--verify", action="store_true",
                       help="translation-validate every compiled loop")
    p_exp.add_argument("--trace", action="store_true",
                       help="record per-cell stall-attribution summaries "
                            "in the manifest")
    _add_config_args(p_exp)
    _add_backend_arg(p_exp)
    _add_machine_arg(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_bench = sub.add_parser(
        "bench",
        help="parallel, cached suite sweep with a run manifest",
    )
    p_bench.add_argument("--suite", choices=["cpu2006", "cpu2000", "micro"],
                         default="cpu2006")
    p_bench.add_argument("--benchmark", action="append",
                         help="restrict to specific benchmarks")
    p_bench.add_argument(
        "--config", action="append", metavar="POLICY",
        choices=[p.value for p in HintPolicy],
        help="variant hint policy; repeatable (default: hlo)",
    )
    p_bench.add_argument("--seed", type=int, default=2008)
    p_bench.add_argument("-n", "--threshold", type=int, default=32,
                         help="trip-count threshold (default: 32)")
    p_bench.add_argument("--no-pgo", action="store_true",
                         help="use the static profile heuristic")
    p_bench.add_argument("--no-prefetch", action="store_true",
                         help="disable software prefetching")
    _add_scheduler_args(p_bench)
    p_bench.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: CPU count, max 8)")
    p_bench.add_argument(
        "--cache-dir", metavar="PATH",
        default="benchmarks/results/cache",
        help="artifact cache directory "
             "(default: benchmarks/results/cache)",
    )
    p_bench.add_argument("--no-cache", action="store_true",
                         help="ignore the artifact cache")
    p_bench.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS", help="per-job timeout")
    p_bench.add_argument("--manifest", metavar="PATH",
                         help="manifest output path "
                              "(default: benchmarks/results/runs/<stamp>.json)")
    p_bench.add_argument("--verify", action="store_true",
                         help="translation-validate every compiled loop "
                              "and record the status in the manifest")
    p_bench.add_argument("--trace", action="store_true",
                         help="record per-cell stall-attribution summaries "
                              "in the manifest")
    _add_backend_arg(p_bench)
    _add_machine_arg(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_cmp = sub.add_parser("compare", help="diff two run manifests")
    p_cmp.add_argument("manifest_a")
    p_cmp.add_argument("manifest_b")
    p_cmp.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any config's geomean regressed (CI gate)",
    )
    p_cmp.add_argument(
        "--tolerance", type=float, default=0.0, metavar="PERCENT",
        help="geomean slowdown to tolerate before failing (default: 0.0)",
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the compile path with differential/metamorphic oracles",
    )
    p_fuzz.add_argument("--cases", type=int, default=100, metavar="N",
                        help="number of cases to generate (default: 100)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first generator seed (default: 0)")
    p_fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="keep failing cases at generated size")
    p_fuzz.add_argument("--corpus-dir", metavar="PATH",
                        help="save failing cases as .loop + .json here")
    p_fuzz.add_argument("--cache-dir", metavar="PATH",
                        help="content-addressed verdict cache directory")
    p_fuzz.add_argument(
        "--inject", default="none", choices=["none", "drop-edge"],
        help="install a deliberate scheduler bug (oracle self-test)",
    )
    p_fuzz.add_argument("--max-ops", type=int, default=14, metavar="N",
                        help="generated loop body size bound (default: 14)")
    p_fuzz.add_argument("--replay", metavar="DIR",
                        help="re-check every .loop file in a corpus "
                             "directory instead of generating new cases")
    _add_machine_arg(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run the repro job server (async HTTP front-end + worker pool)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8437,
                         help="TCP port (default: 8437; 0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker processes (default: 2)")
    p_serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                         help="pending jobs before submits get 429 "
                              "(default: 64)")
    p_serve.add_argument("--job-timeout", type=float, default=600.0,
                         metavar="SECONDS",
                         help="per-job execution timeout (default: 600)")
    p_serve.add_argument("--cache-dir", default=".repro-service/store",
                         metavar="PATH",
                         help="shared artifact store directory "
                              "(default: .repro-service/store)")
    p_serve.add_argument("--runs-dir", default=".repro-service/runs",
                         metavar="PATH",
                         help="bench manifest directory "
                              "(default: .repro-service/runs)")
    p_serve.add_argument("--max-entries", type=int, default=65536, metavar="N",
                         help="artifact store size bound (default: 65536)")
    p_serve.add_argument("--log", metavar="PATH",
                         help="JSON-lines request log (default: stderr)")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         metavar="SECONDS",
                         help="shutdown drain budget (default: 60)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job (or a batch) to a running repro server",
    )
    p_submit.add_argument("kind", nargs="?",
                          choices=["compile", "simulate", "trace",
                                   "fuzz", "bench"],
                          help="job kind (omit when --file is a batch)")
    p_submit.add_argument("--url", default="http://127.0.0.1:8437",
                          help="server base URL "
                               "(default: http://127.0.0.1:8437)")
    p_submit.add_argument("--json", metavar="JSON",
                          help="request fields as an inline JSON object")
    p_submit.add_argument("--file", metavar="PATH",
                          help="request fields from a JSON file; a top-level "
                               "'jobs' list submits a batch")
    p_submit.add_argument("--loop", metavar="LOOP_FILE",
                          help="read this loop file into the request")
    p_submit.add_argument("--wait", type=float, default=600.0,
                          metavar="SECONDS",
                          help="wait this long for completion (default: 600)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the job id and return immediately")
    p_submit.add_argument("--output", metavar="PATH",
                          help="write the full result JSON here")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status",
        help="query a running repro server (stats, jobs, store, runs)",
    )
    p_status.add_argument("job_id", nargs="?",
                          help="job id (or unique >= 8-char prefix)")
    p_status.add_argument("--url", default="http://127.0.0.1:8437",
                          help="server base URL "
                               "(default: http://127.0.0.1:8437)")
    p_status.add_argument("--wait", type=float, default=None,
                          metavar="SECONDS",
                          help="with a job id: wait for completion")
    p_status.add_argument("--jobs", action="store_true",
                          help="list all job records")
    p_status.add_argument("--cache", action="store_true",
                          help="print artifact-store stats")
    p_status.add_argument("--runs", action="store_true",
                          help="list completed bench runs")
    p_status.set_defaults(func=cmd_status)

    p_machines = sub.add_parser(
        "machines",
        help="list the registered machine models (issue template, "
             "queue discipline, scoreboard, digest)",
    )
    p_machines.add_argument("--json", action="store_true",
                            help="emit every full machine description "
                                 "as JSON")
    p_machines.set_defaults(func=cmd_machines)

    p_fig5 = sub.add_parser("fig5", help="print the Fig. 5 theory curves")
    p_fig5.add_argument("--max-k", type=int, default=8)
    p_fig5.set_defaults(func=cmd_fig5)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
