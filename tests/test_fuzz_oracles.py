"""The oracle stack: clean on main, and sharp enough to catch real bugs.

The positive half sweeps seeds through every oracle and demands zero
violations — the same gate ``python -m repro fuzz`` enforces in CI.  The
negative half is the acceptance test of the subsystem: a deliberately
injected scheduler bug (the driver's DDG losing one load-use flow edge)
must be caught by the independent oracles and auto-shrunk to a tiny
reproducer, even though the schedule's own self-checks cannot see it.
"""

import pytest

from repro.fuzz.archexec import run_reference, run_scheduled
from repro.fuzz.gen import generate_loop
from repro.fuzz.oracles import check_loop
from repro.fuzz.runner import (
    FuzzOptions,
    run_fuzz,
    scheduler_mutation,
)
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop


class TestCleanOnMain:
    @pytest.mark.parametrize("seed", range(15))
    def test_zero_violations(self, seed):
        loop = generate_loop(seed)
        report = check_loop(loop, seed=seed)
        assert report.ok, [v.to_dict() for v in report.violations]

    def test_report_shape(self):
        report = check_loop(generate_loop(0), seed=0)
        data = report.to_dict()
        assert data["ok"] and data["seed"] == 0
        assert data["stats"]["ii"] >= 1
        assert "rec_ii" in data["stats"]


class TestArchExec:
    """The differential executor agrees with itself before judging others."""

    def test_reference_is_deterministic(self):
        loop = generate_loop(3)
        assert run_reference(loop, 9).fingerprint() == \
            run_reference(loop, 9).fingerprint()

    def test_replay_of_a_real_schedule_matches_reference(self):
        machine = ItaniumMachine()
        for seed in range(10):
            loop = generate_loop(seed)
            result = pipeline_loop(loop, machine)
            if not result.pipelined:
                continue
            schedule = result.schedule
            replay = run_scheduled(loop, schedule.times, schedule.ii, 13)
            assert not replay.violations
            assert replay.fingerprint() == \
                run_reference(loop, 13).fingerprint()

    def test_sequential_replay_equals_reference(self):
        """A 'schedule' that is literally body order at II = body length
        must reproduce sequential semantics exactly."""
        loop = generate_loop(5)
        times = {inst: inst.index for inst in loop.body}
        replay = run_scheduled(loop, times, len(loop.body), 11)
        assert not replay.violations
        assert replay.fingerprint() == run_reference(loop, 11).fingerprint()


class TestInjectedMutation:
    """Acceptance: drop-edge is caught and shrinks to a tiny reproducer."""

    def _first_caught(self, n=30):
        with scheduler_mutation("drop-edge"):
            for seed in range(n):
                loop = generate_loop(seed)
                report = check_loop(loop, seed=seed)
                if not report.ok:
                    return seed, report
        return None, None

    def test_mutation_is_caught_by_independent_oracles(self):
        seed, report = self._first_caught()
        assert report is not None, "drop-edge never caught in 30 seeds"
        oracles = {v.oracle for v in report.violations}
        # the fresh-DDG dependence oracle or the architectural replay must
        # fire; the static self-checks alone provably cannot
        assert oracles & {"dependence", "differential"}

    def test_mutation_invisible_without_injection(self):
        seed, _ = self._first_caught()
        assert check_loop(generate_loop(seed), seed=seed).ok

    def test_campaign_catches_shrinks_and_saves(self, tmp_path):
        summary = run_fuzz(FuzzOptions(
            cases=30,
            seed=0,
            inject="drop-edge",
            corpus_dir=tmp_path,
            shrink=True,
        ))
        assert summary.failures, "campaign missed the injected bug"
        for failure in summary.failures:
            assert failure["shrunk_ops"] <= 8, (
                "reproducer not shrunk enough: "
                f"{failure['shrunk_ops']} ops\n{failure['source']}"
            )
        # corpus-format artifacts: a .loop and a .json per failure
        loops = sorted(tmp_path.glob("*.loop"))
        manifests = sorted(tmp_path.glob("*.json"))
        assert len(loops) == len(summary.failures)
        assert len(manifests) == len(loops)
        # the saved reproducer is replayable
        from repro.ir import parse_loop

        reproducer = parse_loop(loops[0].read_text())
        with scheduler_mutation("drop-edge"):
            replayed = check_loop(reproducer)
        assert not replayed.ok

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown injection"):
            with scheduler_mutation("drop-everything"):
                pass

    def test_mutation_restores_driver(self):
        import repro.pipeliner.driver as driver
        from repro.ddg.graph import build_ddg

        with scheduler_mutation("drop-edge"):
            assert driver.build_ddg is not build_ddg
        assert driver.build_ddg is build_ddg


class TestCampaign:
    def test_clean_campaign_smoke(self, tmp_path):
        summary = run_fuzz(FuzzOptions(
            cases=10, seed=0, cache_dir=tmp_path / "cache",
        ))
        assert summary.ok and summary.cases == 10
        # second run is served from the verdict cache
        again = run_fuzz(FuzzOptions(
            cases=10, seed=0, cache_dir=tmp_path / "cache",
        ))
        assert again.ok and again.cache_hits == 10

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_fuzz(FuzzOptions(cases=8, seed=50, jobs=1))
        parallel = run_fuzz(FuzzOptions(cases=8, seed=50, jobs=4))
        assert serial.ok == parallel.ok
        assert serial.cases == parallel.cases
