"""Disassembly-style formatting of instructions and loops."""

from __future__ import annotations

from repro.ir.instructions import Instruction
from repro.ir.loop import Loop


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in Itanium-flavoured syntax."""
    parts: list[str] = []
    if inst.qual_pred is not None:
        parts.append(f"({inst.qual_pred})")
    op = inst.opcode

    if op.is_load or op.is_prefetch:
        addr = inst.uses[0] if inst.uses else "?"
        mem = f"[{addr}]"
        if inst.post_increment is not None:
            mem += f", {inst.post_increment}"
        if op.is_prefetch:
            parts.append(f"{op.mnemonic} {mem}")
        else:
            dest = inst.defs[0] if inst.defs else "?"
            parts.append(f"{op.mnemonic} {dest} = {mem}")
        if inst.memref is not None:
            parts.append(f"!{inst.memref.name}")
    elif op.is_store:
        addr = inst.uses[0] if inst.uses else "?"
        value = inst.uses[1] if len(inst.uses) > 1 else "?"
        mem = f"[{addr}]"
        rhs = f"{value}"
        if inst.post_increment is not None:
            rhs += f", {inst.post_increment}"
        parts.append(f"{op.mnemonic} {mem} = {rhs}")
        if inst.memref is not None:
            parts.append(f"!{inst.memref.name}")
    else:
        srcs = [str(u) for u in inst.uses]
        if inst.imm is not None:
            srcs.append(str(inst.imm))
        lhs = ", ".join(str(d) for d in inst.defs) if inst.defs else ""
        if lhs:
            parts.append(f"{op.mnemonic} {lhs} = {', '.join(srcs)}")
        elif srcs:
            parts.append(f"{op.mnemonic} {', '.join(srcs)}")
        else:
            parts.append(op.mnemonic)
    return " ".join(parts)


def format_loop(loop: Loop) -> str:
    """Render a whole loop, one instruction per line."""
    lines = [f"loop {loop.name}:"]
    trips = loop.trip_count
    if trips.estimate is not None:
        lines[0] += f"  // trips~{trips.estimate:g} ({trips.source.value})"
    for inst in loop.body:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)
