"""Hint application policies and the HLO driver.

:func:`apply_hints` turns hint *candidates* into actual hint tokens on the
references, following the experiment policies of Sec. 4:

* ``BASELINE``     — no hints at all (the baseline compiler);
* ``ALL_LOADS_L3`` — the headroom experiment: every load "across the
  board" at the typical L3 latency (Sec. 4.2);
* ``ALL_FP_L2``    — the moderate default: all FP loads at L2 (Sec. 4.3);
* ``HLO``          — prefetcher-directed hints *plus* the FP-L2 default
  ("we continue to use the L2 hint as a default for FP loads for which no
  HLO hint is specified", Sec. 4.3);
* ``HLO_ONLY``     — prefetcher-directed hints alone.

:func:`run_hlo` is the pass pipeline: estimate trip counts, plan and emit
prefetches, apply the hint policy.
"""

from __future__ import annotations

from repro.config import CompilerConfig, HintPolicy
from repro.hlo.prefetcher import (
    PrefetchPlan,
    apply_prefetch_plan,
    plan_prefetches,
)
from repro.hlo.profiles import BlockProfile
from repro.hlo.tripcount import estimate_trip_count
from repro.ir.loop import Loop
from repro.ir.memref import LatencyHint, MemRef


def _loaded_refs(loop: Loop) -> list[MemRef]:
    seen: dict[int, MemRef] = {}
    for inst in loop.body:
        if inst.is_load and inst.memref is not None:
            seen.setdefault(inst.memref.uid, inst.memref)
    return list(seen.values())


def apply_hints(
    loop: Loop, config: CompilerConfig, plan: PrefetchPlan | None = None
) -> None:
    """Set latency-hint tokens on the loop's loaded references."""
    refs = _loaded_refs(loop)
    policy = config.hint_policy
    if policy is HintPolicy.SAMPLED:
        # keep only the miss-sampling annotations already on the loop
        for ref in refs:
            if ref.hint_source != "sampled":
                ref.hint = LatencyHint.NONE
                ref.hint_source = ""
        return
    for ref in refs:
        ref.hint = LatencyHint.NONE
        ref.hint_source = ""

    if policy is HintPolicy.BASELINE:
        return
    if policy is HintPolicy.ALL_LOADS_L3:
        for ref in refs:
            ref.hint = LatencyHint.L3
            ref.hint_source = "policy"
        return
    if policy is HintPolicy.ALL_FP_L2:
        for ref in refs:
            if ref.is_fp:
                ref.hint = LatencyHint.L2
                ref.hint_source = "policy"
        return

    # HLO-directed policies
    candidates = plan.hint_candidates if plan is not None else {}
    for ref in refs:
        hint = candidates.get(ref.uid, LatencyHint.NONE)
        ref.hint = hint
        ref.hint_source = "hlo" if hint is not LatencyHint.NONE else ""
    if policy is HintPolicy.HLO:
        for ref in refs:
            if ref.is_fp and ref.hint is LatencyHint.NONE:
                ref.hint = LatencyHint.L2
                ref.hint_source = "policy"


def run_hlo(
    loop: Loop,
    machine,
    config: CompilerConfig,
    profile: BlockProfile | None = None,
) -> PrefetchPlan:
    """The HLO pass pipeline for one loop (mutates the loop in place)."""
    trip_info = estimate_trip_count(loop, config, profile)
    loop.trip_count = trip_info

    plan = plan_prefetches(loop, machine, config, trip_info)
    if config.prefetch:
        apply_prefetch_plan(loop, plan)
    else:
        # record "not prefetched" on every reference
        for decision in plan.decisions.values():
            decision.emitted = False
            decision.distance = 0
            ref = decision.ref
            ref.prefetched = False
            ref.prefetch_distance = 0
    apply_hints(loop, config, plan)
    return plan
