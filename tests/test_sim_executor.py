"""Tests for whole-loop simulation across invocations."""

import numpy as np
import pytest

from repro.config import CompilerConfig, baseline_config
from repro.core.compiler import LoopCompiler
from repro.sim import MemorySystem, simulate_loop
from repro.sim.executor import FLUSH_CYCLES, FRONTEND_CYCLES
from repro.workloads.loops import low_trip_linear, pointer_chase, stream_int


def _compile(loop, machine, cfg=None):
    return LoopCompiler(machine, cfg or baseline_config()).compile(loop).result


class TestSimulateLoop:
    def test_basic_run(self, machine):
        loop, layout = stream_int("s", streams=1)
        loop.trip_count.estimate = 500.0
        result = _compile(loop, machine)
        run = simulate_loop(result, machine, layout, [500, 500])
        assert run.invocations == 2
        assert run.total_iterations == 1000
        assert run.cycles > 1000  # at least II per iteration
        assert run.counters.total_cycles == pytest.approx(run.cycles, rel=0.01)

    def test_per_invocation_overheads(self, machine):
        loop, layout = low_trip_linear("h")
        loop.trip_count.estimate = 10.0
        result = _compile(loop, machine)
        one = simulate_loop(result, machine, layout, [10],
                            memory=MemorySystem(machine.timings))
        many = simulate_loop(result, machine, layout, [10] * 5,
                             memory=MemorySystem(machine.timings))
        assert many.counters.be_flush_bubble == pytest.approx(
            5 * FLUSH_CYCLES
        )
        assert many.counters.back_end_bubble_fe == pytest.approx(
            5 * FRONTEND_CYCLES
        )
        assert many.counters.be_rse_bubble > one.counters.be_rse_bubble

    def test_prewarm_makes_resident_loops_stall_free(self, machine):
        loop, layout = low_trip_linear("h", working_set=8 * 1024)
        loop.trip_count.estimate = 10.0
        result = _compile(loop, machine)
        run = simulate_loop(result, machine, layout, [10] * 20)
        # data is L1-resident and prewarmed: essentially no memory stalls
        assert run.counters.be_exe_bubble < 50

    def test_streaming_spaces_stay_cold(self, machine):
        loop, layout = stream_int("s", streams=1, working_set=64 << 20)
        loop.trip_count.estimate = 1000.0
        result = _compile(loop, machine, baseline_config().with_(prefetch=False))
        run = simulate_loop(result, machine, layout, [1000])
        assert run.counters.loads_by_level.get(4, 0) > 0
        assert run.counters.be_exe_bubble > 1000

    def test_cache_state_persists_across_invocations(self, machine):
        loop, layout = stream_int("s", streams=1, working_set=32 * 1024,
                                  reuse=True)
        loop.trip_count.estimate = 100.0
        result = _compile(loop, machine, baseline_config().with_(prefetch=False))
        memory = MemorySystem(machine.timings)
        # disable prewarm effect by measuring per-invocation deltas
        c1 = simulate_loop(result, machine, layout, [100], memory=memory)
        assert c1.cycles > 0

    def test_deterministic(self, machine):
        loop, layout = pointer_chase("m", heap=1 << 20)
        loop.trip_count.estimate = 3.0
        result = _compile(loop, machine)
        a = simulate_loop(result, machine, layout, [3] * 20, seed=9)
        loop2, layout2 = pointer_chase("m", heap=1 << 20)
        loop2.trip_count.estimate = 3.0
        result2 = _compile(loop2, machine)
        b = simulate_loop(result2, machine, layout2, [3] * 20, seed=9)
        assert a.cycles == b.cycles

    def test_non_pipelined_fallback_executes(self, machine):
        from repro.hlo.profiles import TripDistribution, collect_block_profile

        loop, layout = low_trip_linear("h")
        profile = collect_block_profile(
            {loop.name: TripDistribution(kind="constant", mean=1)}
        )  # below the pipelining gate
        compiled = LoopCompiler(machine, baseline_config()).compile(
            loop, profile
        )
        assert not compiled.pipelined
        run = simulate_loop(compiled.result, machine, layout, [2] * 10)
        assert run.cycles > 0
        assert run.counters.kernel_iterations == 20

    def test_cycles_per_iteration(self, machine):
        loop, layout = stream_int("s", streams=1, working_set=8 * 1024,
                                  reuse=True)
        loop.trip_count.estimate = 200.0
        result = _compile(loop, machine)
        run = simulate_loop(result, machine, layout, [200])
        assert run.cycles_per_iteration >= result.stats.ii
