"""The shared artifact store: job results addressed by request key.

:class:`ArtifactStore` is the promoted :class:`~repro.harness.cache.
ArtifactCache` (atomic writes, corrupt-entry quarantine, size bound,
hit/miss/eviction stats, ``verify``) plus one service-level convention:
completed job results are stored under their *request key* in an envelope
that records the kind and canonical request they answer.  Workers and the
front-end share one store directory — fine-grained harness entries
(per-loop-run payloads, fuzz verdicts) and whole-job results coexist,
each under its own content address, so a repeated ``bench`` submission is
a single store read and a *partially* repeated one still hits every
per-loop entry it shares with earlier traffic.
"""

from __future__ import annotations

import time

from repro.harness.cache import ArtifactCache

#: service results share the cache format but carry their own envelope
RESULT_KIND = "service-result"


class ArtifactStore(ArtifactCache):
    """A content-addressed store shared by the service and its workers."""

    def put_result(self, key: str, kind: str, request: dict,
                   result: dict) -> None:
        """Store one completed job's result under its request key."""
        self.put(key, {
            "envelope": RESULT_KIND,
            "kind": kind,
            "request": request,
            "result": result,
            "completed_utc": time.strftime(
                "%Y%m%dT%H%M%SZ", time.gmtime()
            ),
        })

    def get_result(self, key: str) -> dict | None:
        """The stored job envelope for ``key``, or ``None``.

        Entries that exist but are *not* job results (e.g. a harness
        loop-run payload whose key collides only by misuse) are treated
        as a miss rather than served as one.
        """
        payload = self.get(key)
        if payload is None or payload.get("envelope") != RESULT_KIND:
            return None
        return payload
