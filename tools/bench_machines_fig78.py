#!/usr/bin/env python
"""Fig. 7/8 replayed on every registered machine model.

The paper's headroom sweep (Fig. 7: all-loads-L3 hints over trip-count
thresholds n ∈ {0, 8, 16, 32, 64}) and hint experiment (Fig. 8: fp-l2
default and HLO-directed hints) both measure what *software* latency
boosting buys on an in-order machine that stalls on use.  The question
this bench answers: how much of that benefit survives on cores that
tolerate load latency in *hardware* — ``ldt-core`` (load-delay
tracking) and ``slsq-core`` (speculative load/store queue)?

For each machine the full grid (baseline + five Fig. 7 columns + two
Fig. 8 bars) runs through one :func:`repro.harness.run_suite` call per
suite with ``verify=True``, so every cell passes the SA1xx-SA5xx
checks and the static bounds.  The JSON report (``--out``, canonically
``benchmarks/results/BENCH_machines_fig78.json``) records per-machine
geomean gains, per-benchmark columns, the manifest fingerprints, and a
``finding`` block comparing boosting's benefit across machines.

Usage::

    PYTHONPATH=src python tools/bench_machines_fig78.py \
        --out benchmarks/results/BENCH_machines_fig78.json --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.harness import ArtifactCache, compare_configs, run_suite
from repro.machine import build_machine, machine_names
from repro.workloads import suite_by_name

THRESHOLDS = (0, 8, 16, 32, 64)
SUITES = ("cpu2000", "cpu2006")
SEED = 2008


def l3_cfg(n: int) -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3,
        trip_count_threshold=n,
        pgo=True,
        prefetch=True,
        name=f"all-l3-n{n}",
    )


def fp_l2_cfg() -> CompilerConfig:
    return CompilerConfig(hint_policy=HintPolicy.ALL_FP_L2,
                          trip_count_threshold=32, pgo=True, name="fp-l2")


def hlo_cfg() -> CompilerConfig:
    return CompilerConfig(hint_policy=HintPolicy.HLO,
                          trip_count_threshold=32, pgo=True, name="hlo")


def _column(result) -> dict:
    return {
        "geomean_gain_pct": round(result.geomean_gain, 4),
        "gains_pct": {name: round(gain, 4)
                      for name, gain in sorted(result.gains.items())},
    }


def run_machine_suite(machine, suite_name: str, cache, workers: int) -> dict:
    """One grid run: baseline + Fig. 7 columns + Fig. 8 bars, verified."""
    base = baseline_config()
    fig7 = [l3_cfg(n) for n in THRESHOLDS]
    fig8 = [fp_l2_cfg(), hlo_cfg()]
    run = run_suite(
        suite_by_name(suite_name),
        [base] + fig7 + fig8,
        machine=machine,
        seed=SEED,
        workers=workers,
        cache=cache,
        suite_name=suite_name,
        verify=True,
    )
    manifest = run.manifest
    if manifest.verify_errors or manifest.bounds_violations:
        raise SystemExit(
            f"{machine.name}/{suite_name}: verification failed "
            f"({manifest.verify_errors} error(s), "
            f"{manifest.bounds_violations} bounds violation(s))"
        )
    return {
        "fingerprint": manifest.fingerprint(),
        "verify": {
            "cells": len(manifest.cells),
            "verified_cells": manifest.verified_cells,
            "errors": manifest.verify_errors,
            "bounds_checked": manifest.bounds_checked,
            "bounds_violations": manifest.bounds_violations,
        },
        "fig7": {
            f"n={n}": _column(compare_configs(run, base.label, cfg.label))
            for n, cfg in zip(THRESHOLDS, fig7)
        },
        "fig8": {
            cfg.label: _column(compare_configs(run, base.label, cfg.label))
            for cfg in fig8
        },
    }


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def finding(machines: dict) -> dict:
    """Does boosting's benefit shrink on latency-tolerant cores?"""
    fig7_peak = {
        name: round(_mean(
            max(suites[s]["fig7"][f"n={n}"]["geomean_gain_pct"]
                for n in THRESHOLDS)
            for s in SUITES
        ), 4)
        for name, suites in machines.items()
    }
    hlo = {
        name: round(_mean(
            suites[s]["fig8"]["hlo"]["geomean_gain_pct"] for s in SUITES
        ), 4)
        for name, suites in machines.items()
    }
    tolerant = [n for n in machines if n != "itanium2"]
    shrinks = all(
        fig7_peak[name] < fig7_peak["itanium2"]
        and hlo[name] < hlo["itanium2"]
        for name in tolerant
    )
    retained = {
        name: {
            "fig7_peak": round(fig7_peak[name] / fig7_peak["itanium2"], 4)
            if fig7_peak["itanium2"] else None,
            "hlo": round(hlo[name] / hlo["itanium2"], 4)
            if hlo["itanium2"] else None,
        }
        for name in tolerant
    }
    return {
        "fig7_peak_geomean_pct": fig7_peak,
        "fig8_hlo_geomean_pct": hlo,
        "benefit_shrinks_on_latency_tolerant_cores": shrinks,
        "benefit_retained_vs_itanium2": retained,
        "note": (
            "geomeans averaged over cpu2000+cpu2006; 'retained' is the "
            "machine's geomean gain divided by itanium2's, so values "
            "below 1.0 mean hardware latency tolerance absorbed part of "
            "the software boosting benefit"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_machines_fig78.json"))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache shared across grids "
                             "(optional; grids already share baselines "
                             "internally)")
    parser.add_argument("--machines", nargs="*", default=None,
                        help="subset of registry names (default: all)")
    args = parser.parse_args(argv)

    names = args.machines or machine_names()
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    machines: dict[str, dict] = {}
    digests: dict[str, str] = {}
    for name in names:
        machine = build_machine(name)
        digests[name] = machine.digest()
        machines[name] = {}
        for suite_name in SUITES:
            print(f"[{name}] {suite_name} grid "
                  f"({1 + len(THRESHOLDS) + 2} configs, verify on)...",
                  flush=True)
            machines[name][suite_name] = run_machine_suite(
                machine, suite_name, cache, args.jobs)

    report = {
        "bench": "machines_fig78",
        "seed": SEED,
        "suites": list(SUITES),
        "thresholds": list(THRESHOLDS),
        "machine_digests": digests,
        "machines": machines,
    }
    if "itanium2" in machines and len(machines) > 1:
        report["finding"] = finding(machines)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if "finding" in report:
        f = report["finding"]
        print("fig7 peak geomean %:", f["fig7_peak_geomean_pct"])
        print("fig8 hlo geomean %:", f["fig8_hlo_geomean_pct"])
        print("benefit shrinks on latency-tolerant cores:",
              f["benefit_shrinks_on_latency_tolerant_cores"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
