"""High-Level Optimizer: software prefetching and latency-hint marking.

This package models the HLO components the paper's technique couples with
(Sec. 3.2): trip-count estimation, cache-line locality grouping, prefetch
planning (distance computation with its TLB/indirect/symbolic-stride
reductions and the L2-only OzQ-pressure mode), and the rules that mark
references with expected-latency hints when prefetch efficiency is below
optimal.
"""

from repro.hlo.profiles import (
    TripDistribution,
    BlockProfile,
    collect_block_profile,
    static_profile_estimate,
)
from repro.hlo.tripcount import estimate_trip_count
from repro.hlo.locality import leading_references
from repro.hlo.prefetcher import PrefetchDecision, PrefetchPlan, plan_prefetches
from repro.hlo.hintpass import apply_hints, run_hlo

__all__ = [
    "TripDistribution",
    "BlockProfile",
    "collect_block_profile",
    "static_profile_estimate",
    "estimate_trip_count",
    "leading_references",
    "PrefetchDecision",
    "PrefetchPlan",
    "plan_prefetches",
    "apply_hints",
    "run_hlo",
]
