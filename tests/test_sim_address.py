"""Tests for address-stream generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.address import AddressMap, StreamSpec, build_streams
from repro.workloads.loops import (
    gather,
    pointer_chase,
    stream_int,
    symbolic_stride,
)


class TestAddressMap:
    def test_regions_disjoint(self):
        amap = AddressMap()
        a = amap.region("a", 1 << 20)
        b = amap.region("b", 1 << 20)
        assert a.base + a.size <= b.base or b.base + b.size <= a.base

    def test_region_cached(self):
        amap = AddressMap()
        assert amap.region("a", 100) is amap.region("a", 100)

    def test_conflicting_size_rejected(self):
        amap = AddressMap()
        amap.region("a", 100)
        with pytest.raises(WorkloadError):
            amap.region("a", 200)

    def test_phase_jitter_differs(self):
        amap = AddressMap()
        a = amap.region("alpha", 4096)
        b = amap.region("omega", 4096)
        assert (a.base % 4096) != (b.base % 4096)


class TestStreams:
    def test_affine_stride(self):
        loop, layout = stream_int("s", streams=1)
        streams = build_streams(loop, layout, 100)
        addrs = streams.addresses(loop.loads[0].memref)
        assert len(addrs) >= 100
        deltas = np.diff(addrs[:50])
        assert set(deltas) == {4}

    def test_affine_wraps_in_region(self):
        loop, layout = stream_int("s", streams=1, working_set=1024)
        streams = build_streams(loop, layout, 1000)
        addrs = streams.addresses(loop.loads[0].memref)
        assert addrs.max() - addrs.min() < 1024

    def test_symbolic_uses_runtime_stride(self):
        loop, layout = symbolic_stride("s", runtime_stride=4096)
        streams = build_streams(loop, layout, 50)
        addrs = streams.addresses(loop.loads[0].memref)
        assert np.all(np.diff(addrs[:10]) == 4096)

    def test_chase_is_permutation_walk(self):
        loop, layout = pointer_chase("m", heap=64 * 1024, node_size=64)
        streams = build_streams(loop, layout, 500)
        chase_ref = loop.body[-1].memref
        addrs = streams.addresses(chase_ref)
        # visits distinct nodes before repeating (permutation order)
        assert len(np.unique(addrs[:400])) == 400

    def test_indirect_random_within_region(self):
        loop, layout = gather("g", data_set=8192)
        streams = build_streams(loop, layout, 500)
        data_ref = next(i.memref for i in loop.loads
                        if i.memref.name == "data")
        addrs = streams.addresses(data_ref)
        assert addrs.max() - addrs.min() < 8192
        assert len(np.unique(addrs[:400])) > 100  # actually random

    def test_same_group_shares_stream(self):
        from repro.workloads.loops import stencil_fp

        loop, layout = stencil_fp("s", taps=2)
        # drop the per-tap offsets so the two refs coincide exactly
        for inst in loop.loads:
            inst.memref.offset = 0
        streams = build_streams(loop, layout, 50)
        a, b = [streams.addresses(i.memref) for i in loop.loads[:2]]
        assert np.array_equal(a, b)

    def test_offsets_shift_streams(self):
        from repro.workloads.loops import stencil_fp

        loop, layout = stencil_fp("s", taps=2)
        streams = build_streams(loop, layout, 50)
        a, b = [streams.addresses(i.memref) for i in loop.loads[:2]]
        assert not np.array_equal(a, b)

    def test_missing_spec_rejected(self):
        loop, layout = stream_int("s", streams=1)
        with pytest.raises(WorkloadError, match="no StreamSpec"):
            build_streams(loop, {}, 10)

    def test_deterministic_by_seed(self):
        loop, layout = gather("g")
        ref = next(i.memref for i in loop.loads if i.memref.name == "data")
        s1 = build_streams(loop, layout, 100, seed=5).addresses(ref)
        s2 = build_streams(loop, layout, 100, seed=5).addresses(ref)
        s3 = build_streams(loop, layout, 100, seed=6).addresses(ref)
        assert np.array_equal(s1, s2)
        assert not np.array_equal(s1, s3)
