"""Tests for rotating and static register allocation."""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ddg import build_ddg
from repro.errors import RegisterAllocationError
from repro.ir import LoopBuilder
from repro.ir.memref import LatencyHint
from repro.ir.registers import RegClass, ROTATING_GR_BASE, ROTATING_PR_BASE
from repro.pipeliner import classify_loads, compute_bounds, modulo_schedule
from repro.pipeliner.driver import pipeline_loop
from repro.regalloc import (
    allocate_rotating,
    allocate_static,
    compute_lifetimes,
)
from repro.regalloc.lifetimes import is_self_recurrent


def _scheduled(loop, machine, boost=False):
    ddg = build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    crit = classify_loads(ddg, machine, bounds)
    if not boost:
        crit = crit.demote_all()
    sched = modulo_schedule(ddg, machine, bounds.min_ii, crit)
    assert sched is not None
    return sched


class TestLifetimes:
    def test_running_example_spans(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        lifetimes = {lt.reg: lt for lt in compute_lifetimes(sched)}
        load_data = running_example.body[0].defs[0]
        add_result = running_example.body[1].defs[0]
        # II=1: load->add distance 1 -> span 2; add->store 1 -> span 2
        assert lifetimes[load_data].span(sched.ii) == 2
        assert lifetimes[add_result].span(sched.ii) == 2

    def test_self_recurrent_excluded(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        regs = {lt.reg for lt in compute_lifetimes(sched)}
        for inst in running_example.body:
            if inst.post_increment is not None:
                assert inst.address_reg not in regs
                assert is_self_recurrent(inst, inst.address_reg)

    def test_boosting_stretches_lifetimes(self, running_example, machine):
        running_example.body[0].memref.hint = LatencyHint.L3
        base = _scheduled(running_example, machine, boost=False)
        boosted = _scheduled(running_example, machine, boost=True)
        load_data = running_example.body[0].defs[0]

        def span_of(sched):
            return {lt.reg: lt for lt in compute_lifetimes(sched)}[
                load_data
            ].span(sched.ii)

        assert span_of(boosted) > span_of(base)
        # the paper's rule: a clustering factor of k needs >= k registers
        k = boosted.load_placements()[0].clustering_factor(boosted.ii)
        assert span_of(boosted) >= k

    def test_live_out_extension(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        y = b.fma(acc, x, x)
        b.mark_live_out(y)
        loop = b.build("lo")
        sched = _scheduled(loop, machine)
        lt = {l.reg: l for l in compute_lifetimes(sched)}[y]
        assert lt.end_time >= lt.def_time + sched.ii


class TestRotatingAllocation:
    def test_fig3_blades(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        alloc = allocate_rotating(sched, machine)
        load_data = running_example.body[0].defs[0]
        add_result = running_example.body[1].defs[0]
        # the paper's Fig. 3: ld4 r32, add r34 = r33, st4 r35
        assert alloc.physical_def(load_data) == ROTATING_GR_BASE
        assert alloc.physical_use(load_data, 1) == 33
        assert alloc.physical_def(add_result) == 34
        assert alloc.physical_use(add_result, 1) == 35

    def test_stage_predicates_reserved(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        alloc = allocate_rotating(sched, machine)
        assert alloc.used[RegClass.PR] == sched.stage_count

    def test_capacity_failure(self, running_example, machine):
        from repro.ir.registers import RegisterFile
        from repro.machine import ItaniumMachine

        files = dict(machine.register_files)
        files[RegClass.GR] = RegisterFile(RegClass.GR, 36, 32, 3)
        tiny = ItaniumMachine(register_files=files)
        sched = _scheduled(running_example, machine)
        with pytest.raises(RegisterAllocationError):
            allocate_rotating(sched, tiny)

    def test_read_past_blade_rejected(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        alloc = allocate_rotating(sched, machine)
        load_data = running_example.body[0].defs[0]
        with pytest.raises(RegisterAllocationError):
            alloc.physical_use(load_data, 99)

    def test_utilization(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        alloc = allocate_rotating(sched, machine)
        assert 0 < alloc.utilization(RegClass.GR) < 0.2
        assert alloc.utilization(RegClass.FR) == 0.0


class TestStaticAllocation:
    def test_live_ins_counted(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        rot = allocate_rotating(sched, machine)
        static = allocate_static(sched, rot.used)
        # r5, r6, r9 live-in GRs (addresses + addend)
        assert static.demand[RegClass.GR] == 3
        assert static.spills == 0

    def test_spills_when_demand_exceeds_supply(self, machine):
        b = LoopBuilder()
        acc = None
        ref = b.memref("a", stride=4)
        x = b.load("ld4", b.live_greg("p"), ref, post_inc=4)
        acc = x
        for i in range(25):  # more live-ins than static GR supply
            acc = b.alu("add", acc, b.live_greg(f"inv{i}"))
        loop = b.build("fat")
        sched = _scheduled(loop, machine)
        rot = allocate_rotating(sched, machine)
        static = allocate_static(sched, rot.used)
        assert static.spills > 0

    def test_stacked_frame_tracks_rotating_use(self, running_example, machine):
        sched = _scheduled(running_example, machine)
        rot = allocate_rotating(sched, machine)
        static = allocate_static(sched, rot.used)
        assert static.stacked_frame >= rot.used[RegClass.GR]
