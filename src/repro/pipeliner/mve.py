"""Modulo variable expansion (MVE): pipelining without register rotation.

Sec. 5 of the paper credits rotating registers for making clustering
cheap: "rotating registers easily enable clustering of load instances
from successive iterations ... Without rotating registers, this effect
could only be achieved with unrolling."

This module implements that alternative (Lam, PLDI'88): the kernel is
unrolled ``U`` times, where ``U`` is the longest value lifetime in kernel
iterations, and each unrolled copy ``k`` writes value ``v`` into register
instance ``v#(k mod u_v)``.  A use ``rot`` iterations after the
definition reads instance ``(k − rot) mod u_v``.  Register demand matches
the rotating allocation (Σ spans); the *cost* shows up as code size — the
kernel grows by the unroll factor and the prolog/epilog must be emitted
as explicit partial copies instead of being predicated away.  The code
size comparison is the quantitative version of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.ir.registers import Reg
from repro.pipeliner.schedule import Schedule
from repro.regalloc.lifetimes import compute_lifetimes


@dataclass(frozen=True)
class MVEOp:
    """One operation of one unrolled kernel copy."""

    inst: Instruction
    copy: int
    row: int
    #: register instance names as written/read, e.g. ``vr4#2``
    renamed_defs: tuple[str, ...]
    renamed_uses: tuple[str, ...]

    def format(self) -> str:
        from repro.ir.printer import format_instruction

        text = format_instruction(self.inst)
        for reg, name in zip(
            [r for r in self.inst.all_defs() if r.virtual]
            + [r for r in self.inst.all_uses() if r.virtual],
            self.renamed_defs + self.renamed_uses,
        ):
            text = text.replace(str(reg), name, 1)
        return text


@dataclass
class UnrolledKernel:
    """The MVE form of a pipelined loop."""

    loop_name: str
    ii: int
    stage_count: int
    unroll_factor: int
    #: per-copy operation lists
    copies: list[list[MVEOp]] = field(default_factory=list)
    #: register instances required per expanded value
    instances: dict[Reg, int] = field(default_factory=dict)

    @property
    def kernel_ops(self) -> int:
        return sum(len(c) for c in self.copies)

    @property
    def prolog_ops(self) -> int:
        """Explicit fill code: stage ``s`` of the prolog executes only the
        operations of stages ``< s`` — one partial body per fill step."""
        per_stage = self._ops_per_stage()
        return sum(
            sum(per_stage[: s + 1]) for s in range(self.stage_count - 1)
        )

    @property
    def epilog_ops(self) -> int:
        """Explicit drain code: the mirror image of the prolog."""
        per_stage = self._ops_per_stage()
        return sum(
            sum(per_stage[s + 1 :]) for s in range(self.stage_count - 1)
        )

    def _ops_per_stage(self) -> list[int]:
        counts = [0] * self.stage_count
        for op in self.copies[0]:
            counts[self._stages[op.inst.index]] += 1
        return counts

    @property
    def total_ops(self) -> int:
        """Static code size including fill and drain copies."""
        return self.kernel_ops + self.prolog_ops + self.epilog_ops

    def expansion_factor(self, body_size: int) -> float:
        """Static code growth over the rotating-register kernel, whose
        size is exactly one loop body."""
        return self.total_ops / max(1, body_size)

    @property
    def register_instances(self) -> int:
        return sum(self.instances.values())

    def format(self, max_copies: int = 2) -> str:
        lines = [
            f"L_{self.loop_name}_mve:  // II={self.ii}, "
            f"unrolled x{self.unroll_factor}, "
            f"{self.total_ops} static ops incl. fill/drain"
        ]
        for k, copy in enumerate(self.copies[:max_copies]):
            lines.append(f"  // copy {k}")
            for op in copy:
                lines.append(f"  {op.format()}")
        if len(self.copies) > max_copies:
            lines.append(f"  // ... {len(self.copies) - max_copies} more copies")
        return "\n".join(lines)


def generate_mve_kernel(schedule: Schedule) -> UnrolledKernel:
    """Unroll-and-rename the schedule for a rotation-less target."""
    from repro.ddg.edges import DepKind

    ii = schedule.ii
    lifetimes = compute_lifetimes(schedule)
    spans = {lt.reg: lt.span(ii) for lt in lifetimes}
    unroll = max(spans.values(), default=1)

    # rotation distance per (consumer index, reg), as in kernel generation
    rotations: dict[tuple[int, Reg], int] = {}
    for edge in schedule.ddg.edges:
        if edge.kind is not DepKind.FLOW or edge.reg is None:
            continue
        if edge.reg not in spans:
            continue
        t_def = schedule.time_of(edge.src)
        t_use = schedule.time_of(edge.dst) + ii * edge.omega
        rot = t_use // ii - t_def // ii
        key = (edge.dst.index, edge.reg)
        rotations[key] = max(rotations.get(key, 0), rot)

    kernel = UnrolledKernel(
        loop_name=schedule.loop.name,
        ii=ii,
        stage_count=schedule.stage_count,
        unroll_factor=unroll,
        instances=dict(spans),
    )
    kernel._stages = {
        inst.index: schedule.stage_of(inst) for inst in schedule.loop.body
    }

    order = sorted(
        schedule.loop.body,
        key=lambda i: (schedule.row_of(i), i.index),
    )
    for k in range(unroll):
        copy: list[MVEOp] = []
        for inst in order:
            defs = tuple(
                _instance_name(reg, k, spans)
                for reg in inst.all_defs()
                if reg.virtual
            )
            uses = []
            for reg in inst.all_uses():
                if not reg.virtual:
                    continue
                if reg in spans:
                    rot = rotations.get((inst.index, reg), 0)
                    uses.append(_instance_name(reg, k - rot, spans))
                else:
                    uses.append(str(reg))  # static / self-recurrent
            copy.append(
                MVEOp(
                    inst=inst,
                    copy=k,
                    row=schedule.row_of(inst),
                    renamed_defs=defs,
                    renamed_uses=tuple(uses),
                )
            )
        kernel.copies.append(copy)
    return kernel


def _instance_name(reg: Reg, k: int, spans: dict[Reg, int]) -> str:
    if reg not in spans:
        return str(reg)
    u = max(1, spans[reg])
    return f"{reg}#{k % u}"
