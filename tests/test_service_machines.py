"""Machine-model plumbing through the service layer.

The ``machine`` field is result-determining: it must be validated (an
unknown name is a structured 400, never a queued job), canonicalised
into the request key (per-machine artifacts never collide), and an
HTTP-submitted per-machine suite must fingerprint-identically match a
local ``run_suite`` on the same machine.
"""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.errors import ServiceError
from repro.harness import run_suite
from repro.machine import build_machine
from repro.service import ServerConfig, ServiceClient, serve_in_thread
from repro.service.protocol import normalize_request, request_key
from repro.workloads import micro_suite

BENCH = "micro.stream"  # one-benchmark slice keeps the HTTP run quick


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("svc-machines")
    handle = serve_in_thread(ServerConfig(
        port=0,
        workers=2,
        cache_dir=str(tmp_path / "store"),
        runs_dir=str(tmp_path / "runs"),
        log_path=str(tmp_path / "log.jsonl"),
    ))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    yield client
    handle.stop()


# --- protocol -----------------------------------------------------------------

def test_machine_defaults_to_itanium2_in_every_kind():
    assert normalize_request("bench", {"suite": "micro"})["machine"] == \
        "itanium2"
    assert normalize_request("fuzz", {})["machine"] == "itanium2"
    loop_req = {"loop": "loop l\n  ld4 r4 = [r5], 4 !A\nend"}
    for kind in ("compile", "simulate", "trace"):
        payload = dict(loop_req)
        assert normalize_request(kind, payload)["machine"] == "itanium2"


def test_machine_is_part_of_the_request_key():
    base = normalize_request("bench", {"suite": "micro"})
    ldt = normalize_request("bench", {"suite": "micro",
                                      "machine": "ldt-core"})
    assert request_key("bench", base) != request_key("bench", ldt)


def test_backend_is_stripped_but_machine_is_not():
    spelled = normalize_request("bench", {"suite": "micro",
                                          "backend": "fast"})
    implicit = normalize_request("bench", {"suite": "micro"})
    assert request_key("bench", spelled) == request_key("bench", implicit)


def test_unknown_machine_is_a_structured_400():
    with pytest.raises(ServiceError) as exc:
        normalize_request("bench", {"suite": "micro",
                                    "machine": "pentium4"})
    assert exc.value.status == 400
    assert "machine" in str(exc.value)
    assert "itanium2" in str(exc.value)  # the valid choices are listed


# --- HTTP ---------------------------------------------------------------------

def test_unknown_machine_over_http_is_rejected_not_queued(service):
    with pytest.raises(ServiceError) as exc:
        service.submit("bench", suite="micro", machine="pentium4")
    assert exc.value.status == 400
    assert service.stats()["jobs"]["executed"] == 0


@pytest.mark.parametrize("machine_name", ["ldt-core", "slsq-core"])
def test_http_machine_suite_matches_local_fingerprint(service, machine_name):
    job = service.submit("bench", suite="micro",
                         benchmarks=[BENCH],
                         machine=machine_name)["job"]
    record = service.wait(job["id"], timeout=300)
    assert record["status"] == "done"
    result = record["result"]

    suite = [b for b in micro_suite() if b.name == BENCH]
    local = run_suite(
        suite,
        [baseline_config(pgo=True, prefetch=True),
         CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32,
                        pgo=True, prefetch=True)],
        machine=build_machine(machine_name),
        seed=2008,
        suite_name="micro",
    )
    assert result["fingerprint"] == local.manifest.fingerprint()
    assert result["manifest"]["machine"] == machine_name
    for cell in result["manifest"]["cells"]:
        assert cell["machine"] == machine_name
        assert cell["machine_digest"] == \
            build_machine(machine_name).digest()


def test_per_machine_results_do_not_collide_in_the_store(service):
    jobs = {}
    for machine_name in ("itanium2", "ldt-core"):
        job = service.submit("bench", suite="micro",
                             benchmarks=[BENCH],
                             machine=machine_name)["job"]
        jobs[machine_name] = service.wait(job["id"], timeout=300)
    assert jobs["itanium2"]["result"]["fingerprint"] != \
        jobs["ldt-core"]["result"]["fingerprint"]
