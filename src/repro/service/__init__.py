"""repro-as-a-service: an async job server over the repro pipeline.

The service turns the local harness into a shared resource: jobs arrive
as JSON over HTTP, are canonicalised to the same content addresses the
harness cache uses, deduplicated against in-flight and stored work, and
fanned out to a supervised worker pool.  Because the whole pipeline is
deterministic, a result computed once — by anyone, over HTTP or via the
local CLI against the same store — is the result, forever.

Layering: ``protocol`` (schema → canonical form → content key),
``jobs`` (worker-side execution on the existing pipeline), ``store``
(the shared artifact store), ``server`` (asyncio HTTP front-end, dedup,
backpressure, drain), ``client`` (stdlib HTTP client), ``log``
(JSON-lines request log).
"""

from repro.service.client import ServiceClient
from repro.service.jobs import execute_request
from repro.service.log import RequestLog
from repro.service.protocol import (
    JOB_KINDS,
    SCHEMA_VERSION,
    describe_request,
    normalize_request,
    request_key,
)
from repro.service.server import (
    DEFAULT_PORT,
    ReproService,
    ServerConfig,
    ServiceHandle,
    serve,
    serve_in_thread,
)
from repro.service.store import RESULT_KIND, ArtifactStore

__all__ = [
    "DEFAULT_PORT",
    "JOB_KINDS",
    "RESULT_KIND",
    "SCHEMA_VERSION",
    "ArtifactStore",
    "ReproService",
    "RequestLog",
    "ServerConfig",
    "ServiceClient",
    "ServiceHandle",
    "describe_request",
    "execute_request",
    "normalize_request",
    "request_key",
    "serve",
    "serve_in_thread",
]
