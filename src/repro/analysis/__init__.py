"""Static analysis / translation validation for the pipeliner.

An independent safety net over the modulo scheduler, kernel generator,
rotating allocator and hint plumbing: every invariant is re-derived from
first principles and any disagreement is reported as a
:class:`~repro.analysis.diagnostics.Diagnostic` with a stable ``SAnnn``
code.  See ``docs/analysis.md`` for the code reference.
"""

from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.hintcheck import verify_hints
from repro.analysis.irlint import lint_loop
from repro.analysis.kernelverify import verify_kernel
from repro.analysis.optimality import verify_optimality
from repro.analysis.perfmodel import (
    SiteBound,
    StaticPerfModel,
    build_perf_model,
    check_simulation,
)
from repro.analysis.pressure import max_live, verify_pressure
from repro.analysis.schedverify import verify_schedule
from repro.analysis.verify import (
    verification_status,
    verify_compiled,
    verify_result,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "lint_loop",
    "verify_schedule",
    "verify_kernel",
    "verify_hints",
    "verify_optimality",
    "verify_result",
    "verify_compiled",
    "verification_status",
    "SiteBound",
    "StaticPerfModel",
    "build_perf_model",
    "check_simulation",
    "max_live",
    "verify_pressure",
]
