"""SA6xx: independent re-derivation of exact-scheduler certificates.

The exact scheduler (:mod:`repro.pipeliner.optimal`) stamps its results
with an optimality claim (``stats.optimal_status``) and a certified
lower bound (``stats.ii_lower_bound``).  Like every other claim in this
repository, those are re-checked from first principles rather than
trusted:

* **SA601** — the result claims ``"optimal"`` yet re-running the exact
  search one II below the achieved one, under the *weakest* latency
  policy (all boosts demoted — boosting only adds constraints), finds a
  feasible schedule.  The claim is refuted by a concrete witness.
* **SA602** — the certified lower bound is inconsistent with the
  achieved II: a bound above the II actually achieved, or an
  ``"optimal"`` claim whose bound does not equal the achieved II.

The re-check is bounded by its own deterministic node budget; a budget
that runs out simply cannot *refute* the claim (the driver's own proof
used a larger budget), so no finding is emitted — exactly mirroring how
SA5xx bounds only fire on proven contradictions.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.pipeliner.driver import PipelineResult
from repro.pipeliner.optimal import SolveStatus, solve_ii

#: node budget for the independent ii-1 re-solve; enough to reproduce
#: every proof the default driver budget can produce on suite loops
RECHECK_BUDGET = 50_000


def verify_optimality(
    result: PipelineResult, budget: int = RECHECK_BUDGET
) -> DiagnosticReport:
    """Re-derive the optimality certificate of one exact-scheduler result."""
    report = DiagnosticReport()
    stats = result.stats
    if stats.scheduler != "optimal" or not result.pipelined:
        return report
    loop_name = result.loop.name
    achieved = stats.ii
    bound = stats.ii_lower_bound

    if bound is None or bound > achieved or (
        stats.optimal_status == "optimal" and bound != achieved
    ):
        report.add(
            "SA602",
            f"certified lower bound {bound} inconsistent with achieved "
            f"II={achieved} (status {stats.optimal_status!r})",
            loop=loop_name,
            detail={
                "ii": achieved,
                "ii_lower_bound": bound,
                "optimal_status": stats.optimal_status,
            },
        )

    if (
        stats.optimal_status == "optimal"
        and result.criticality is not None
        and achieved > result.bounds.min_ii
    ):
        # any II below min_ii is infeasible by ResII/RecII theory, so the
        # claim only needs a witness search at achieved - 1; the weakest
        # policy is the most permissive, so feasibility there refutes the
        # driver's "every policy was infeasible below" proof
        weakest = result.criticality.demote_all()
        machine = result.schedule.machine
        outcome = solve_ii(
            result.ddg,
            achieved - 1,
            machine.latency_query,
            weakest.expected_fn,
            machine.resources,
            budget,
        )
        if outcome.status is SolveStatus.FEASIBLE:
            report.add(
                "SA601",
                f"claimed optimal at II={achieved} but II={achieved - 1} "
                f"is schedulable under base latencies",
                loop=loop_name,
                detail={
                    "ii": achieved,
                    "witness_ii": achieved - 1,
                    "nodes": outcome.nodes,
                },
            )
    return report
