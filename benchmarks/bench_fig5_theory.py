"""Fig. 5: stall reduction vs clustering factor (Equ. (2)).

Regenerates the four curves (coverage ratios 1, 0.5, 0.1, 0.01) and
validates the analytical model against the cycle-level simulator on the
running example with a fixed runtime latency.
"""

import pytest

from repro.core.theory import fig5_series, stall_reduction_percent


def _format_series() -> str:
    series = fig5_series(max_k=8)
    lines = ["k " + "".join(f"{c:>10}" for c in series)]
    for k in range(1, 9):
        row = f"{k} "
        for c in series:
            row += f"{dict(series[c])[k]:>9.1f}%"
        lines.append(row)
    return "\n".join(lines)


def test_fig5_series(benchmark, record):
    series = benchmark(fig5_series)
    record("fig5_stall_reduction", _format_series())
    # anchor points from the paper's discussion
    assert dict(series[0.01])[3] == pytest.approx(67.0, abs=0.5)
    assert all(v == 100.0 for _, v in series[1.0])
    # clustering compensates even for very low coverage ratios
    assert dict(series[0.1])[8] > 85.0


def test_fig5_simulator_validation(benchmark, record, machine):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The simulator's measured stall reduction tracks Equ. (2)."""
    from tests.test_sim_core import _run

    latency = 14
    L = latency - 1
    base_result, base = _run(machine, 0, latency, n=500)
    k0 = base_result.stats.placements[0].use_distance // base_result.ii + 1
    rows = ["d  k_eff  predicted  measured"]
    for d in (2, 4, 6, 9):
        result, counters = _run(machine, d, latency, n=500)
        k = result.stats.placements[0].use_distance // result.ii + 1
        measured = 100.0 * (1 - counters.be_exe_bubble / base.be_exe_bubble)
        predicted = 100.0 * (1 - ((L - d) / k) / (L / k0))
        rows.append(f"{d}  {k:5d}  {predicted:8.1f}%  {measured:7.1f}%")
        assert measured == pytest.approx(predicted, abs=3.0)
    record("fig5_simulator_validation", "\n".join(rows))
