"""Set-associative LRU caches with prefetch ready-times.

Each resident line remembers when its fill completes (``ready_time``), so
a demand access that arrives before an in-flight prefetch finishes pays
the *remaining* latency — modelling late prefetches instead of treating
prefetched lines as magically present.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size: int
    line_size: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.associativity):
            raise ValueError(f"{self.name}: size not divisible into sets")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.associativity)


class Cache:
    """One level of the hierarchy."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: dict[int, OrderedDict[int, float]] = {}
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_size
        return line % self.config.num_sets, line

    def lookup(self, addr: int, now: float) -> float | None:
        """Extra delay if resident (0.0 for a settled line), else ``None``.

        A hit refreshes LRU order.  A line still being filled returns the
        remaining fill time.
        """
        set_idx, tag = self._locate(addr)
        ways = self._sets.get(set_idx)
        if ways is None or tag not in ways:
            self.misses += 1
            return None
        ways.move_to_end(tag)
        self.hits += 1
        ready = ways[tag]
        return max(0.0, ready - now)

    def fill(self, addr: int, ready_time: float) -> None:
        """Install a line (evicting LRU as needed)."""
        set_idx, tag = self._locate(addr)
        ways = self._sets.setdefault(set_idx, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = min(ways[tag], ready_time)
            return
        if len(ways) >= self.config.associativity:
            ways.popitem(last=False)
        ways[tag] = ready_time

    def contains(self, addr: int) -> bool:
        set_idx, tag = self._locate(addr)
        ways = self._sets.get(set_idx)
        return bool(ways) and tag in ways

    def reset(self) -> None:
        self._sets.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        c = self.config
        return f"Cache({c.name}: {c.size>>10}KB {c.associativity}-way)"
