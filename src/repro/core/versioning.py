"""Trip-count versioning (Sec. 6 outlook).

"... and/or trip-count versioning": emit *two* versions of a pipelined
loop — the latency-tolerant one and a conventional one — and select at
run time based on the actual trip count of the invocation.  The deep
pipeline only runs when there are enough iterations to amortise its
fill/drain cost, which removes exactly the failure mode behind the
177.mesa regression (training said 154 iterations, reference inputs ran
8) without giving up the gains on long invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.config import CompilerConfig, SimBackend
from repro.core.compiler import CompiledLoop, LoopCompiler
from repro.hlo.profiles import BlockProfile
from repro.ir.loop import Loop
from repro.machine.itanium2 import ItaniumMachine
from repro.sim.address import AddressMap, StreamSpec, build_streams
from repro.sim.core import prepare_execution, run_iterations
from repro.sim.counters import PerfCounters
from repro.sim.fastpath import (
    compile_kernel,
    fast_machine_supported,
    fast_replay_supported,
    run_iterations_fast,
)
from repro.sim.executor import (
    FLUSH_CYCLES,
    FRONTEND_CYCLES,
    LoopRunResult,
    RSE_CYCLES_PER_REG,
    _prewarm_resident_regions,
)
from repro.sim.memory import MemorySystem

#: cycles of the runtime trip-count test + branch selecting the version
VERSION_CHECK_CYCLES = 2.0


@dataclass
class VersionedLoop:
    """Two compiled versions of one loop plus the selection threshold."""

    boosted: CompiledLoop
    fallback: CompiledLoop
    #: invocations with at least this many iterations run the boosted body
    threshold: int

    def pick(self, trips: int) -> CompiledLoop:
        return self.boosted if trips >= self.threshold else self.fallback


def compile_versions(
    loop_factory: Callable[[], tuple[Loop, dict[str, StreamSpec]]],
    machine: ItaniumMachine,
    config: CompilerConfig,
    threshold: int | None = None,
    profile: BlockProfile | None = None,
) -> tuple[VersionedLoop, dict[str, StreamSpec]]:
    """Compile the boosted and conventional versions of one loop.

    The fallback version uses the same configuration with latency
    tolerance switched off, so prefetching and every other decision stay
    comparable.  The default threshold matches the boosted version's
    break-even point: its extra kernel iterations must cost no more than
    a modest fraction of the useful work.
    """
    loop_a, layout = loop_factory()
    boosted = LoopCompiler(machine, config).compile(loop_a, profile)
    loop_b, _ = loop_factory()
    fallback = LoopCompiler(
        machine,
        config.with_(latency_tolerant=False, name=f"{config.label}+fallback"),
    ).compile(loop_b, profile)

    if threshold is None:
        extra = max(
            0,
            boosted.stats.stage_count - fallback.stats.stage_count,
        )
        # amortise the extra fill/drain iterations over >= 4x useful work
        threshold = max(1, 4 * extra)
    return VersionedLoop(boosted=boosted, fallback=fallback,
                         threshold=threshold), layout


def simulate_versioned(
    versioned: VersionedLoop,
    machine: ItaniumMachine,
    layout: dict[str, StreamSpec],
    trip_counts: list[int] | np.ndarray,
    memory: MemorySystem | None = None,
    seed: int = 11,
    backend: SimBackend | str | None = None,
) -> LoopRunResult:
    """Execute a versioned loop, switching per invocation at run time.

    Both versions share the cache and TLB state, exactly as the two
    kernels of one function would.  Every invocation pays a small
    version-check cost on top of the usual loop overheads.
    """
    memory = memory or machine.memory_system()
    counters = PerfCounters()
    backend = SimBackend.parse(backend)
    use_fast = (
        backend is SimBackend.FAST
        and fast_machine_supported(machine)
        and fast_replay_supported(memory)
    )
    trips = [int(t) for t in trip_counts]
    total_iters = sum(trips)
    stream_len = max(total_iters, max(trips) if trips else 0)

    versions = {}
    for name, compiled in (("boosted", versioned.boosted),
                           ("fallback", versioned.fallback)):
        result = compiled.result
        setup = prepare_execution(result, machine)
        streams = build_streams(
            result.loop, layout, stream_len, seed=seed,
            address_map=AddressMap(),
        )
        versions[name] = (compiled, setup, streams)

    _prewarm_resident_regions(
        versioned.boosted.result, layout, versions["boosted"][2], memory
    )

    reuse_spaces = {s for s, spec in layout.items() if spec.reuse}
    cycle = 0.0
    running_base = 0
    for n in trips:
        name = "boosted" if n >= versioned.threshold else "fallback"
        compiled, setup, streams = versions[name]
        static = compiled.result.static
        stacked = static.stacked_frame if static is not None else 8

        counters.be_rse_bubble += stacked * RSE_CYCLES_PER_REG
        counters.be_flush_bubble += FLUSH_CYCLES
        counters.back_end_bubble_fe += FRONTEND_CYCLES
        counters.unstalled += VERSION_CHECK_CYCLES
        cycle += (
            stacked * RSE_CYCLES_PER_REG
            + FLUSH_CYCLES
            + FRONTEND_CYCLES
            + VERSION_CHECK_CYCLES
        )

        base = 0 if reuse_spaces else running_base
        if use_fast:
            cycle = run_iterations_fast(
                compile_kernel(setup), streams, base, n, memory,
                machine.ozq_capacity, counters, cycle,
            )
        else:
            cycle = run_iterations(
                setup, streams, base, n, memory, machine.ozq_capacity,
                counters, cycle, queue=machine.queue,
                scoreboard=machine.scoreboard,
            )
        running_base += n
        counters.invocations += 1

    return LoopRunResult(
        loop_name=versioned.boosted.loop.name,
        cycles=cycle,
        counters=counters,
        invocations=len(trips),
        total_iterations=total_iters,
        backend=(SimBackend.FAST if use_fast else SimBackend.INTERP).value,
    )
