"""Diff two run manifests: per-benchmark deltas and geomean drift.

``python -m repro compare runA.json runB.json`` pairs the cells of two
manifests on (benchmark, config) and reports, per config column, the
percentage delta of every benchmark plus the geometric-mean ratio — the
same geomean convention the paper's Sec. 4.1 methodology uses, so a
regression in a code change shows up exactly like a slowdown in Fig. 7/8.
"""

from __future__ import annotations

import dataclasses

from repro.harness.manifest import RunManifest
from repro.hlo.profiles import geometric_mean


@dataclasses.dataclass
class CellDelta:
    """One matched (benchmark, config) cell across two runs."""

    benchmark: str
    config: str
    cycles_a: float
    cycles_b: float

    @property
    def ratio(self) -> float:
        """cycles_a / cycles_b: > 1 when run B is faster."""
        return self.cycles_a / self.cycles_b if self.cycles_b else float("inf")

    @property
    def delta_percent(self) -> float:
        """Percent gain of run B over run A (positive = B faster)."""
        return (self.ratio - 1.0) * 100.0


@dataclasses.dataclass
class ManifestComparison:
    """All matched cells of two manifests, grouped by config."""

    run_a: str
    run_b: str
    #: config label -> matched deltas, in manifest-A cell order
    deltas: dict[str, list[CellDelta]]
    #: cells present in only one of the two manifests
    only_in_a: list[tuple[str, str]]
    only_in_b: list[tuple[str, str]]

    def geomean(self, config: str) -> float:
        """Geomean gain (%) of run B over run A for one config.

        Computed over the intersection only; a config with no matched
        cells contributes nothing and reads 0.0 rather than raising.
        """
        ratios = [delta.ratio for delta in self.deltas.get(config, [])]
        return (geometric_mean(ratios) - 1.0) * 100.0

    @property
    def overall_geomean(self) -> float:
        ratios = [
            delta.ratio
            for deltas in self.deltas.values()
            for delta in deltas
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    @property
    def matched_cells(self) -> int:
        return sum(len(deltas) for deltas in self.deltas.values())

    def regressions(self, tolerance_percent: float = 0.0) -> dict[str, float]:
        """Configs whose geomean got *slower* in run B, beyond a tolerance.

        Returns ``{config: geomean_delta_percent}`` for every config whose
        geomean gain is below ``-tolerance_percent`` — the gate behind
        ``repro compare --fail-on-regression``, with the tolerance
        absorbing sub-threshold noise so CI does not flap.
        """
        if tolerance_percent < 0:
            raise ValueError(
                f"tolerance must be >= 0, got {tolerance_percent}"
            )
        return {
            config: gain
            for config in self.deltas
            for gain in [self.geomean(config)]
            if gain < -tolerance_percent
        }


def compare_manifests(a: RunManifest, b: RunManifest) -> ManifestComparison:
    """Pair the cells of ``a`` and ``b`` on (benchmark, config).

    Cells that did not complete (``status != "ok"``, e.g. a reaped
    timeout) carry no meaningful cycles and are excluded from matching on
    both sides — a half-run sweep can still be compared over the cells
    that finished.
    """
    index_b = {
        (cell.benchmark, cell.config): cell
        for cell in b.cells
        if cell.status == "ok"
    }
    deltas: dict[str, list[CellDelta]] = {}
    matched: set[tuple[str, str]] = set()
    only_in_a: list[tuple[str, str]] = []
    for cell in a.cells:
        if cell.status != "ok":
            continue
        key = (cell.benchmark, cell.config)
        other = index_b.get(key)
        if other is None:
            only_in_a.append(key)
            continue
        matched.add(key)
        deltas.setdefault(cell.config, []).append(CellDelta(
            benchmark=cell.benchmark,
            config=cell.config,
            cycles_a=cell.total_cycles,
            cycles_b=other.total_cycles,
        ))
    only_in_b = [
        (cell.benchmark, cell.config)
        for cell in b.cells
        if cell.status == "ok"
        and (cell.benchmark, cell.config) not in matched
    ]
    return ManifestComparison(
        run_a=a.run_id,
        run_b=b.run_id,
        deltas=deltas,
        only_in_a=only_in_a,
        only_in_b=only_in_b,
    )


def format_comparison(comparison: ManifestComparison) -> str:
    """A paper-style table: rows = benchmarks, one column per config."""
    lines = [
        f"run A: {comparison.run_a}",
        f"run B: {comparison.run_b}",
        "",
    ]
    if not comparison.deltas:
        lines.append("(no matching cells)")
    for config, deltas in comparison.deltas.items():
        width = max(len(d.benchmark) for d in deltas) + 2
        width = max(width, len("Geomean") + 2)
        lines.append(f"config: {config}")
        lines.append(
            f"{'benchmark':<{width}}{'A cycles':>16}{'B cycles':>16}"
            f"{'B vs A':>9}"
        )
        for delta in deltas:
            lines.append(
                f"{delta.benchmark:<{width}}{delta.cycles_a:>16.0f}"
                f"{delta.cycles_b:>16.0f}{delta.delta_percent:>+8.1f}%"
            )
        lines.append(
            f"{'Geomean':<{width}}{'':>16}{'':>16}"
            f"{comparison.geomean(config):>+8.1f}%"
        )
        lines.append("")
    # partially-overlapping or disjoint runs: name the unmatched cells so
    # a suite/config mismatch is visible instead of silently dropped
    if comparison.only_in_a:
        lines.append(f"removed (only in A): {len(comparison.only_in_a)} cell(s)")
        for benchmark, config in comparison.only_in_a:
            lines.append(f"  - {benchmark} [{config}]")
    if comparison.only_in_b:
        lines.append(f"added (only in B): {len(comparison.only_in_b)} cell(s)")
        for benchmark, config in comparison.only_in_b:
            lines.append(f"  + {benchmark} [{config}]")
    if comparison.matched_cells:
        lines.append(
            f"overall geomean (B vs A): {comparison.overall_geomean:+.2f}% "
            f"over {comparison.matched_cells} matched cells"
        )
    else:
        lines.append("overall geomean (B vs A): n/a (no matched cells)")
    return "\n".join(lines)
