"""Cyclic data-dependence graph (DDG) for loop bodies.

The DDG is the structure the pipeliner schedules against: nodes are the
loop-body instructions, edges carry a dependence kind and an iteration
distance ``omega`` (a *loop-carried* dependence has ``omega >= 1``).  A
*recurrence cycle* is a dependence cycle whose total distance is >= 1
(footnote 1 of the paper); the largest ``ceil(latency/distance)`` over all
recurrence cycles is the Recurrence II (Sec. 1.1).

Edge latencies are not stored in the graph.  They are resolved through a
latency query so the pipeliner can ask for base or hint-derived *expected*
load latencies (Sec. 3.3), which is the heart of the paper's technique.
"""

from repro.ddg.edges import DepEdge, DepKind
from repro.ddg.graph import DDG, build_ddg
from repro.ddg.cycles import (
    RecurrenceCycle,
    enumerate_recurrence_cycles,
    recurrence_ii,
    recurrence_ii_search,
)
from repro.ddg.dependence import (
    DependenceResult,
    DependenceVerdict,
    test_dependence,
)
from repro.ddg.mindist import mindist_matrix
from repro.ddg.slack import acyclic_heights, acyclic_slacks

__all__ = [
    "DepEdge",
    "DepKind",
    "DDG",
    "build_ddg",
    "RecurrenceCycle",
    "enumerate_recurrence_cycles",
    "recurrence_ii",
    "recurrence_ii_search",
    "DependenceResult",
    "DependenceVerdict",
    "test_dependence",
    "mindist_matrix",
    "acyclic_heights",
    "acyclic_slacks",
]
