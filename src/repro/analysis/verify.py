"""Top-level translation validation: run every analysis over one loop.

This is the entry point the CLI (``python -m repro lint``, ``--verify``)
and the harness use.  It composes the four passes:

* :func:`repro.analysis.irlint.lint_loop` (SA1xx) on the compiled loop
  (after HLO, so inserted prefetches are linted too);
* :func:`repro.analysis.schedverify.verify_schedule` (SA2xx),
* :func:`repro.analysis.kernelverify.verify_kernel` (SA3xx), and
* :func:`repro.analysis.hintcheck.verify_hints` (SA4xx)
  when the loop was actually software-pipelined.

Loops the driver left sequential (low trip counts, scheduling failures)
only get the IR lint — there is no schedule to validate.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.hintcheck import verify_hints
from repro.analysis.irlint import lint_loop
from repro.analysis.kernelverify import verify_kernel
from repro.analysis.schedverify import verify_schedule
from repro.core.compiler import CompiledLoop
from repro.pipeliner.driver import PipelineResult


def verify_result(result: PipelineResult) -> DiagnosticReport:
    """Validate one pipeliner result end to end."""
    report = lint_loop(result.loop)
    if result.pipelined and result.schedule is not None:
        report.extend(verify_schedule(result.schedule, result.stats))
        if result.kernel is not None and result.rotating is not None:
            report.extend(
                verify_kernel(result.kernel, result.schedule, result.rotating)
            )
        report.extend(verify_hints(result.schedule, result.stats))
    return report


def verify_compiled(compiled: CompiledLoop) -> DiagnosticReport:
    """Validate one compiled loop (the HLO-transformed IR + its schedule)."""
    return verify_result(compiled.result)


def verification_status(report: DiagnosticReport) -> dict:
    """Compact, JSON-serialisable summary for manifests and job payloads."""
    counts = report.counts()
    return {
        "ok": report.ok,
        "errors": counts["error"],
        "warnings": counts["warning"],
        "notes": counts["note"],
        "codes": report.codes(),
    }
