"""Diagnostics framework for the static-analysis layer.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` values with a *stable code* drawn from the registry
below, a severity, and a source location (loop name plus instruction
index/text).  Codes are grouped by subsystem:

* ``SA1xx`` — IR lint (:mod:`repro.analysis.irlint`)
* ``SA2xx`` — modulo-schedule verification (:mod:`repro.analysis.schedverify`)
* ``SA3xx`` — kernel / rotating-register verification
  (:mod:`repro.analysis.kernelverify`)
* ``SA4xx`` — latency-hint consistency (:mod:`repro.analysis.hintcheck`)
* ``SA5xx`` — static performance bounds and their post-simulation
  cross-checks (:mod:`repro.analysis.perfmodel`,
  :mod:`repro.analysis.pressure`)
* ``SA6xx`` — exact-scheduler optimality certificates
  (:mod:`repro.analysis.optimality`)

The registry is the single source of truth consumed by the renderers, the
documentation (``docs/analysis.md``) and the mutation tests, which provoke
every code exactly once.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact violates a correctness invariant
    and any benchmark number derived from it is suspect.  ``WARNING``
    findings are well-formedness smells (dead code, odd operand widths).
    ``NOTE`` findings are observations that cost performance or registers
    but not correctness.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        order = {"error": 0, "warning": 1, "note": 2}
        return order[self.value] < order[other.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    #: paper section / equation the check enforces (empty when none)
    paper: str = ""


def _c(code: str, severity: Severity, title: str, paper: str = "") -> CodeInfo:
    return CodeInfo(code=code, severity=severity, title=title, paper=paper)


#: The closed registry of diagnostic codes.
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in [
        # --- SA1xx: IR lint ------------------------------------------------
        _c("SA101", Severity.ERROR, "empty loop body"),
        _c("SA102", Severity.ERROR, "branch instruction in loop body"),
        _c("SA103", Severity.ERROR, "virtual register has multiple definitions"),
        _c("SA104", Severity.ERROR,
           "use of a virtual register that is neither defined nor live-in"),
        _c("SA105", Severity.ERROR, "operand arity mismatch for opcode"),
        _c("SA106", Severity.ERROR, "malformed memory operation"),
        _c("SA107", Severity.WARNING, "dead definition (never used, not live-out)"),
        _c("SA108", Severity.ERROR, "live-out register never defined"),
        _c("SA109", Severity.WARNING, "access size disagrees with opcode width"),
        # --- SA2xx: schedule verification ---------------------------------
        _c("SA201", Severity.ERROR, "schedule time domain mismatch"),
        _c("SA202", Severity.ERROR, "dependence edge violated modulo II",
           "Sec. 1.1: t(dst) + II*omega - t(src) >= latency"),
        _c("SA203", Severity.ERROR, "execution resources over-subscribed in a row",
           "Sec. 1.1 Resource II / MRT"),
        _c("SA204", Severity.ERROR, "stage-count or schedule bookkeeping mismatch",
           "Sec. 1.1: SC = max t // II + 1"),
        _c("SA205", Severity.ERROR, "load placement metrics mismatch",
           "Sec. 2.1 additional latency d, Equ. (3) k = d//II + 1"),
        # --- SA3xx: kernel / rotating registers ---------------------------
        _c("SA301", Severity.ERROR, "kernel does not match the scheduled loop"),
        _c("SA302", Severity.ERROR, "stage predicate or row/stage mismatch",
           "Sec. 1.1: stage s guarded by p16+s"),
        _c("SA303", Severity.ERROR, "rotation renaming violated",
           "Sec. 1.1: a use rot iterations later reads phys + rot"),
        _c("SA304", Severity.ERROR, "rotating blade overlap, span or capacity",
           "Sec. 2.2/3.3: blades disjoint, spans cover live ranges"),
        # --- SA4xx: hint consistency --------------------------------------
        _c("SA401", Severity.ERROR, "boosted load does not cover its hinted latency",
           "Sec. 3.3: expected-latency scheduling"),
        _c("SA402", Severity.ERROR, "boost/criticality plumbing inconsistency",
           "Sec. 3.3: only hinted, non-critical loads are boosted"),
        _c("SA403", Severity.ERROR, "load placement latency bookkeeping mismatch",
           "Sec. 3.3 latency query"),
        _c("SA404", Severity.NOTE, "non-boosted load silently stretched",
           "Sec. 2.2: stages cost registers"),
        # --- SA5xx: static performance bounds -----------------------------
        _c("SA501", Severity.ERROR,
           "register pressure exceeds rotating allocation or capacity",
           "Sec. 2.2: lifetimes spanning s stages cost s registers"),
        _c("SA502", Severity.NOTE,
           "OzQ occupancy not provably below capacity",
           "Sec. 2: 48-entry OzQ saturation"),
        _c("SA503", Severity.NOTE,
           "zero-stall proof fails: residual latency exposable",
           "Sec. 2.1 Equ. (2): residual (L-d)/k per load site"),
        _c("SA511", Severity.ERROR,
           "simulated event counts contradict the static model",
           "Sec. 4.5: counter-based cycle accounting"),
        _c("SA512", Severity.ERROR,
           "fixed-cost cycle buckets contradict the static model",
           "Sec. 4.5: BACK_END_BUBBLE decomposition"),
        _c("SA513", Severity.ERROR,
           "BE_EXE_BUBBLE exceeds the static residual-latency bound",
           "Sec. 2.1 Equ. (2) / Fig. 5"),
        _c("SA514", Severity.ERROR,
           "OzQ counters contradict the static occupancy bound",
           "Sec. 4.5: L2D_OZQ_FULL"),
        _c("SA515", Severity.ERROR,
           "simulated cycles outside the static [lower, upper] interval",
           "Fig. 10: cycle accounting"),
        _c("SA516", Severity.ERROR,
           "per-site attributed stall exceeds the static residual bound",
           "Sec. 3.1: per-load stall attribution"),
        # --- SA6xx: scheduler optimality ----------------------------------
        _c("SA601", Severity.ERROR,
           "schedule claimed optimal but a lower II is schedulable",
           "Roorda: exact modulo scheduling as ground truth"),
        _c("SA602", Severity.ERROR,
           "certified II lower bound inconsistent with the achieved II",
           "Roorda: exact modulo scheduling as ground truth"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a location, and a human message."""

    code: str
    message: str
    loop: str = ""
    #: body index of the offending instruction (None for loop-level findings)
    inst: int | None = None
    #: formatted instruction text, when an instruction is implicated
    where: str = ""
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODES[self.code].severity

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def format(self) -> str:
        loc = self.loop or "<loop>"
        if self.inst is not None:
            loc += f":{self.inst}"
        line = f"{loc}: {self.code} {self.severity.value}: {self.message}"
        if self.where:
            line += f"  [{self.where}]"
        return line

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": self.title,
            "message": self.message,
            "loop": self.loop,
            "inst": self.inst,
            "where": self.where,
            "detail": self.detail,
        }


@dataclass
class DiagnosticReport:
    """An ordered collection of findings with severity accounting."""

    findings: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        *,
        loop: str = "",
        inst=None,
        detail: dict | None = None,
    ) -> Diagnostic:
        """Record one finding.  ``inst`` may be an Instruction or an index."""
        index: int | None = None
        where = ""
        if inst is not None:
            if isinstance(inst, int):
                index = inst
            else:
                index = inst.index
                from repro.ir.printer import format_instruction

                where = format_instruction(inst)
        diag = Diagnostic(
            code=code,
            message=message,
            loop=loop,
            inst=index,
            where=where,
            detail=detail or {},
        )
        self.findings.append(diag)
        return diag

    def extend(self, other: "DiagnosticReport") -> "DiagnosticReport":
        self.findings.extend(other.findings)
        return self

    # --- accounting ---------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.findings if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> list[Diagnostic]:
        return self.by_severity(Severity.NOTE)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding was recorded."""
        return not self.errors

    def codes(self) -> list[str]:
        return sorted({d.code for d in self.findings})

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.findings)

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.findings, key=lambda d: (d.severity, d.code, d.inst or -1)
        )

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "note": len(self.notes),
        }

    # --- renderers ----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [d.to_dict() for d in self.sorted()],
        }

    def render_text(self) -> str:
        """Human-readable listing, most severe first."""
        if not self.findings:
            return "no findings"
        lines = [d.format() for d in self.sorted()]
        c = self.counts()
        lines.append(
            f"{c['error']} error(s), {c['warning']} warning(s), "
            f"{c['note']} note(s)"
        )
        return "\n".join(lines)

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
