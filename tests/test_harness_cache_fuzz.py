"""Harness-cache behaviour under fuzz workloads, plus the new
maintenance APIs (entries / delete / prune) and the generic task pool.
"""

import json
import os

import pytest

from repro.errors import HarnessError
from repro.fuzz.gen import GenConfig
from repro.fuzz.oracles import ORACLE_VERSION
from repro.fuzz.runner import case_key
from repro.harness.cache import ArtifactCache, hash_key
from repro.harness.pool import run_tasks


class TestFuzzCaseKeys:
    """The verdict cache must never replay a stale verdict."""

    def test_key_includes_seed(self):
        gen = GenConfig()
        assert case_key(1, gen, "none") != case_key(2, gen, "none")

    def test_key_includes_generator_config(self):
        assert case_key(1, GenConfig(), "none") != case_key(
            1, GenConfig(max_ops=6), "none"
        )

    def test_key_includes_injection_mode(self):
        gen = GenConfig()
        assert case_key(1, gen, "none") != case_key(1, gen, "drop-edge")

    def test_key_includes_oracle_version(self):
        """Bumping ORACLE_VERSION must invalidate every cached verdict."""
        gen = GenConfig()
        material = {
            "kind": "fuzz-case",
            "seed": 1,
            "gen": gen.to_dict(),
            "oracle_version": ORACLE_VERSION + 1,
            "machine": "itanium2",
            "inject": "none",
        }
        assert hash_key(material) != case_key(1, gen, "none")


class TestCorruptionRecovery:
    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = case_key(1, GenConfig(), "none")
        cache.put(key, {"ok": True})
        path = cache.path_for(key)
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, {"ok": False})
        assert cache.get(key) == {"ok": False}

    def test_wrong_version_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = case_key(2, GenConfig(), "none")
        cache.put(key, {"ok": True})
        path = cache.path_for(key)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None


class TestMaintenance:
    def _fill(self, cache, n):
        keys = []
        for i in range(n):
            key = hash_key({"i": i})
            cache.put(key, {"i": i})
            # spread mtimes so eviction order is deterministic
            os.utime(cache.path_for(key), (1_000_000 + i, 1_000_000 + i))
            keys.append(key)
        return keys

    def test_entries_oldest_first(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = self._fill(cache, 5)
        assert [k for k, _ in cache.entries()] == keys

    def test_delete(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        (key,) = self._fill(cache, 1)
        assert cache.delete(key)
        assert cache.get(key) is None
        assert not cache.delete(key)

    def test_prune_evicts_oldest(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = self._fill(cache, 6)
        removed = cache.prune(max_entries=2)
        assert removed == 4
        assert len(cache) == 2
        # the two newest survive
        assert cache.get(keys[-1]) == {"i": 5}
        assert cache.get(keys[-2]) == {"i": 4}
        assert cache.get(keys[0]) is None

    def test_prune_noop_under_limit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        self._fill(cache, 2)
        assert cache.prune(max_entries=10) == 0
        assert len(cache) == 2

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path).prune(-1)


def _square(x):
    return x * x


def _maybe_sleep(x):
    import time

    time.sleep(x)
    return x


class TestRunTasks:
    def test_serial_order(self):
        assert run_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_order(self):
        assert run_tasks(_square, list(range(10)), workers=4) == [
            x * x for x in range(10)
        ]

    def test_timeout_raises(self):
        with pytest.raises(HarnessError, match="timeout"):
            run_tasks(_maybe_sleep, [5.0], workers=2, timeout=0.05)
