"""Tests for the register model."""

import pytest

from repro.ir.registers import (
    AR_EC,
    AR_LC,
    Reg,
    RegClass,
    RegisterFile,
    ROTATING_GR_BASE,
    ROTATING_PR_BASE,
    greg,
    freg,
    preg,
    itanium_register_files,
)


class TestReg:
    def test_virtual_naming(self):
        assert greg(4).name == "vr4"
        assert freg(7).name == "vf7"
        assert preg(1).name == "vp1"

    def test_physical_naming(self):
        assert greg(32, virtual=False).name == "r32"
        assert freg(32, virtual=False).name == "f32"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(RegClass.GR, -1)

    def test_equality_and_hash(self):
        assert greg(4) == greg(4)
        assert greg(4) != greg(5)
        assert greg(4) != freg(4)
        assert greg(4) != greg(4, virtual=False)
        assert len({greg(4), greg(4), freg(4)}) == 2

    def test_str_matches_name(self):
        assert str(greg(9)) == "vr9"

    def test_special_application_registers(self):
        assert AR_LC.rclass is RegClass.AR
        assert AR_EC.rclass is RegClass.AR
        assert not AR_LC.virtual


class TestRegisterFile:
    def test_itanium_files_rotating_areas(self):
        files = itanium_register_files()
        assert files[RegClass.GR].rotating_base == ROTATING_GR_BASE == 32
        assert files[RegClass.GR].rotating_size == 96
        assert files[RegClass.FR].rotating_size == 96
        assert files[RegClass.PR].rotating_base == ROTATING_PR_BASE == 16
        assert files[RegClass.PR].rotating_size == 48

    def test_static_count(self):
        files = itanium_register_files()
        assert files[RegClass.GR].static_count == 32
        assert files[RegClass.PR].static_count == 16

    def test_oversized_rotating_area_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(RegClass.GR, 64, rotating_base=32, rotating_size=64)
