"""Sec. 4.5: register-pressure and compile statistics.

Paper numbers (CPU2006, HLO hints vs baseline, no PGO): general registers
+14%, FP registers +20%, predicate registers +35%; all register files stay
under ~one fifth utilised on average; spills grow only marginally; the
extra scheduling attempts cost ~0.5% compile time.
"""

import pytest

from benchmarks.conftest import base_cfg, hlo_cfg
from repro.core import register_statistics
from repro.core.statistics import format_register_table
from repro.ir.registers import RegClass


@pytest.fixture(scope="module")
def register_stats(exp2006):
    base = exp2006.run_config(base_cfg(pgo=False))
    variant = exp2006.run_config(hlo_cfg(pgo=False))
    return (
        register_statistics(base, "baseline"),
        register_statistics(variant, "hlo-hints"),
    )


def test_sec45_register_statistics(benchmark, record, register_stats):
    base, variant = register_stats
    benchmark.pedantic(
        lambda: format_register_table(base, variant), rounds=1, iterations=1
    )
    record("sec45_register_statistics", format_register_table(base, variant))

    # all three classes grow, predicates the most (stage predicates track
    # the pipeline depth directly)
    gr = variant.increase_percent(base, RegClass.GR)
    fr = variant.increase_percent(base, RegClass.FR)
    pr = variant.increase_percent(base, RegClass.PR)
    assert gr > 3.0
    assert fr > 3.0
    assert pr > 3.0
    assert pr > gr  # predicates grow fastest (paper: 35% vs 14%)

    # "the large supply of architected registers ... is far from being
    # exhausted": average utilisation stays low
    assert variant.utilization[RegClass.GR] < 0.45
    assert variant.utilization[RegClass.FR] < 0.45

    # spills stay essentially flat
    assert variant.spill_increase_percent(base) < 25.0


def test_sec45_boosting_summary(benchmark, record, register_stats):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base, variant = register_stats
    lines = [
        f"pipelined loops         : {variant.pipelined_loops}",
        f"boosted / total loads   : {variant.boosted_loads}"
        f"/{variant.total_loads}",
        f"latency fallbacks fired : {variant.latency_fallbacks}",
    ]
    record("sec45_boosting_summary", "\n".join(lines))
    assert variant.boosted_loads > 0
    assert variant.pipelined_loops >= base.pipelined_loops
