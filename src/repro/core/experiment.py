"""Suite-level experiments: baseline vs variant, gains, geomean.

The harness mirrors the paper's methodology (Sec. 4.1): each benchmark is
"run by itself", the percentage gain over the baseline compiler is
reported per benchmark, and suites are summarised by the geometric mean of
the runtime ratios.

Determinism guarantees that percentage differences are pure compiler
effects: for one benchmark, the per-invocation trip counts, address
streams and dataset seeds are identical across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import CompilerConfig, baseline_config
from repro.core.compiler import CompiledLoop, LoopCompiler
from repro.hlo.profiles import BlockProfile, collect_block_profile, geometric_mean
from repro.machine.itanium2 import ItaniumMachine
from repro.sim.counters import PerfCounters
from repro.sim.executor import simulate_loop
from repro.sim.memory import MemorySystem
from repro.workloads.spec import Benchmark

#: how the serial (non-loop) component of a benchmark splits into the
#: cycle-accounting buckets — identical under every config by construction
SERIAL_SPLIT = {
    "unstalled": 0.52,
    "be_exe_bubble": 0.28,
    "be_l1d_fpu_bubble": 0.07,
    "be_rse_bubble": 0.04,
    "be_flush_bubble": 0.05,
    "back_end_bubble_fe": 0.04,
}


@dataclass
class LoopOutcome:
    """Per-loop compile + simulate outcome within one benchmark run."""

    compiled: CompiledLoop
    cycles: float
    counters: PerfCounters


@dataclass
class BenchmarkResult:
    """One benchmark under one configuration."""

    name: str
    suite: str
    config_label: str
    loop_cycles: float
    serial_cycles: float
    counters: PerfCounters
    loops: list[LoopOutcome] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return self.loop_cycles + self.serial_cycles


@dataclass
class ExperimentResult:
    """A baseline-vs-variant comparison over one suite."""

    baseline_label: str
    variant_label: str
    #: benchmark name -> percent gain over baseline (positive = faster)
    gains: dict[str, float]
    baseline: dict[str, BenchmarkResult]
    variant: dict[str, BenchmarkResult]

    @property
    def geomean_gain(self) -> float:
        ratios = [
            self.baseline[name].total_cycles / self.variant[name].total_cycles
            for name in self.gains
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    def gain(self, name: str) -> float:
        return self.gains[name]


def percent_gain(baseline_cycles: float, variant_cycles: float) -> float:
    """Speedup percentage: positive when the variant is faster."""
    return (baseline_cycles / variant_cycles - 1.0) * 100.0


class Experiment:
    """Runs benchmark suites under compiler configurations, with caching."""

    def __init__(
        self,
        benchmarks: list[Benchmark],
        machine: ItaniumMachine | None = None,
        seed: int = 2008,
    ) -> None:
        self.benchmarks = benchmarks
        self.machine = machine or ItaniumMachine()
        self.seed = seed
        self._cache: dict[tuple[str, str], BenchmarkResult] = {}
        self._serial_anchor: dict[str, float] = {}
        self._profiles: dict[str, BlockProfile] = {}

    # --- internals ------------------------------------------------------------
    def _profile_for(self, bench: Benchmark) -> BlockProfile:
        """The PGO block profile from the training input (cached)."""
        if bench.name not in self._profiles:
            dists = {}
            for lw in bench.loops:
                loop, _ = lw.build()
                dists[loop.name] = lw.data.train
            self._profiles[bench.name] = collect_block_profile(
                dists, seed=self.seed
            )
        return self._profiles[bench.name]

    def _serial_cycles(self, bench: Benchmark) -> float:
        """Non-loop cycles: anchored to the canonical baseline run."""
        if bench.name not in self._serial_anchor:
            anchor = self._run_loops(bench, baseline_config())
            self._serial_anchor[bench.name] = (
                bench.serial_factor * anchor[0]
            )
        return self._serial_anchor[bench.name]

    def _run_loops(
        self, bench: Benchmark, config: CompilerConfig
    ) -> tuple[float, PerfCounters, list[LoopOutcome]]:
        compiler = LoopCompiler(self.machine, config)
        profile = self._profile_for(bench) if config.pgo else None
        total = 0.0
        counters = PerfCounters()
        outcomes: list[LoopOutcome] = []
        for pos, lw in enumerate(bench.loops):
            loop, layout = lw.build()
            compiled = compiler.compile(loop, profile)
            rng = np.random.default_rng(self.seed + pos * 977 + _stable(bench.name))
            trips = lw.data.ref.sample(rng, lw.invocations)
            memory = MemorySystem(self.machine.timings)
            sim = simulate_loop(
                compiled.result,
                self.machine,
                layout,
                trips,
                memory=memory,
                seed=self.seed + pos,
            )
            total += sim.cycles * lw.weight
            counters.merge(
                sim.counters.scaled(lw.weight)
                if lw.weight != 1.0
                else sim.counters
            )
            outcomes.append(
                LoopOutcome(
                    compiled=compiled,
                    cycles=sim.cycles * lw.weight,
                    counters=sim.counters,
                )
            )
        return total, counters, outcomes

    # --- public API ---------------------------------------------------------
    def run_benchmark(
        self, bench: Benchmark, config: CompilerConfig
    ) -> BenchmarkResult:
        key = (bench.name, config.label)
        if key in self._cache:
            return self._cache[key]
        loop_cycles, counters, outcomes = self._run_loops(bench, config)
        serial = self._serial_cycles(bench)
        for bucket, share in SERIAL_SPLIT.items():
            setattr(
                counters, bucket, getattr(counters, bucket) + serial * share
            )
        result = BenchmarkResult(
            name=bench.name,
            suite=bench.suite,
            config_label=config.label,
            loop_cycles=loop_cycles,
            serial_cycles=serial,
            counters=counters,
            loops=outcomes,
        )
        self._cache[key] = result
        return result

    def run_config(self, config: CompilerConfig) -> dict[str, BenchmarkResult]:
        return {
            bench.name: self.run_benchmark(bench, config)
            for bench in self.benchmarks
        }

    def compare(
        self, baseline: CompilerConfig, variant: CompilerConfig
    ) -> ExperimentResult:
        base = self.run_config(baseline)
        var = self.run_config(variant)
        gains = {
            name: percent_gain(base[name].total_cycles, var[name].total_cycles)
            for name in base
        }
        return ExperimentResult(
            baseline_label=baseline.label,
            variant_label=variant.label,
            gains=gains,
            baseline=base,
            variant=var,
        )


def _stable(text: str) -> int:
    """Deterministic small hash (``hash`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value
