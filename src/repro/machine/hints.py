"""Translation of latency-hint tokens into scheduling latencies.

Sec. 3.3: "L2 and L3 latency hints are not translated into the best-case
latencies of these cache levels (5/14), but into higher values that are
closer to the typical latency values (11/21) specified in the manual. [...]
The above latency numbers are for integer loads; FP loads require one
additional cycle for format conversion."

The best-case translation is kept around for the ablation bench that shows
why the headroom values matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.ir.memref import LatencyHint


@dataclass(frozen=True)
class HintTranslation:
    """Maps a hint token to the integer-load scheduling latency.

    FP loads add :attr:`fp_extra` cycles.  ``MEM`` hints are clipped to
    :attr:`max_scheduled` because scheduling loads for more than 20-30
    cycles is not advisable — the cost grows linearly with the latency
    amount (Sec. 2.1).
    """

    name: str
    l1: int = 1
    l2: int = 11
    l3: int = 21
    mem: int = 25
    fp_extra: int = 1
    max_scheduled: int = 25

    def scheduling_latency(self, hint: LatencyHint, is_fp: bool, base: int) -> int:
        """Scheduling latency for a load with ``hint`` and base latency."""
        if hint is LatencyHint.NONE:
            return base
        table = {
            LatencyHint.L1: self.l1,
            LatencyHint.L2: self.l2,
            LatencyHint.L3: self.l3,
            LatencyHint.MEM: self.mem,
        }
        try:
            value = table[hint]
        except KeyError:  # pragma: no cover - enum is closed
            raise MachineModelError(f"unknown hint {hint}")
        if is_fp:
            value += self.fp_extra
        value = min(value, self.max_scheduled)
        # a hint never *lowers* the latency below the base
        return max(value, base)


#: The production setting: typical latencies with headroom for dynamic
#: hazards (conflicting stores, bank conflicts) — Sec. 3.3.
TYPICAL_TRANSLATION = HintTranslation(name="typical", l2=11, l3=21)

#: Ablation: translate hints into the best-case cache latencies instead.
BEST_CASE_TRANSLATION = HintTranslation(name="best-case", l2=5, l3=14)
