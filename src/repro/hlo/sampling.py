"""Dynamic cache-miss sampling (Sec. 6 outlook).

"To make this information more precise and consequently increase the net
gain from the optimization, we are looking into dynamic cache-miss
sampling ..."

This module implements that extension: a training run executes the loop
in the simulator and records, per memory reference, the distribution of
satisfying cache levels.  :func:`hints_from_miss_profile` then derives
latency-hint tokens directly from *measured* behaviour instead of the
prefetcher's static heuristics — the hint is the typical miss level, and
references that mostly hit where their base latency already lives get no
hint at all.

References are keyed by ``(space, name)`` so profiles survive the IR
cloning the compiler performs per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CompilerConfig, baseline_config
from repro.ir.loop import Loop
from repro.ir.memref import LatencyHint, MemRef
from repro.machine.itanium2 import ItaniumMachine
from repro.sim.memory import MemorySystem

RefKey = tuple[str, str]


def _key(ref: MemRef) -> RefKey:
    return (ref.space, ref.name)


#: effective-latency bucket boundaries mapping to L1/L2/L3/memory classes
_LATENCY_BUCKETS = (3.0, 8.0, 18.0)


@dataclass
class RefMissStats:
    """Observed cache behaviour of one memory reference.

    Samples record the *effective* latency, not just the satisfying
    level — a line still being filled by a late prefetch reports as an
    "L2 hit" but can cost a hundred cycles, and it is the latency the
    scheduler must cover.
    """

    #: hit counts per level {1: L1D, 2: L2, 3: L3, 4: memory}
    levels: dict[int, int] = field(default_factory=dict)
    #: counts per effective-latency class {1: <=3cy, 2: <=8, 3: <=18, 4: more}
    latency_classes: dict[int, int] = field(default_factory=dict)
    latency_sum: float = 0.0

    @property
    def samples(self) -> int:
        return sum(self.levels.values())

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.samples if self.samples else 0.0

    def level_fraction(self, level: int) -> float:
        if not self.samples:
            return 0.0
        return self.levels.get(level, 0) / self.samples

    def add(self, level: int, latency: float) -> None:
        self.levels[level] = self.levels.get(level, 0) + 1
        for cls, bound in enumerate(_LATENCY_BUCKETS, start=1):
            if latency <= bound:
                break
        else:
            cls = 4
        self.latency_classes[cls] = self.latency_classes.get(cls, 0) + 1
        self.latency_sum += latency

    @property
    def typical_level(self) -> int:
        """The deepest effective-latency class this reference reaches at
        least 20% of the time — misses are what hurt, so the tail matters
        more than the mode."""
        for cls in (4, 3, 2):
            tail = sum(self.latency_classes.get(c, 0) for c in range(cls, 5))
            if self.samples and tail / self.samples >= 0.2:
                return cls
        return 1


@dataclass
class MissProfile:
    """Per-reference miss statistics from a sampled training run."""

    stats: dict[RefKey, RefMissStats] = field(default_factory=dict)

    def for_ref(self, ref: MemRef) -> RefMissStats | None:
        return self.stats.get(_key(ref))

    def record(self, ref: MemRef, level: int, latency: float) -> None:
        entry = self.stats.setdefault(_key(ref), RefMissStats())
        entry.add(level, latency)


class _SamplingMemory(MemorySystem):
    """A memory system that attributes each demand load to its reference.

    ``current_ref`` is set by the tagging stream table just before the
    executor issues the access (the executor performs exactly one stream
    lookup per memory operation, immediately before the memory call).
    """

    def __init__(self, timings, profile: MissProfile) -> None:
        super().__init__(timings)
        self.profile = profile
        self.current_ref: MemRef | None = None

    def load(self, addr, now, is_fp=False):
        result = super().load(addr, now, is_fp)
        if self.current_ref is not None:
            self.profile.record(self.current_ref, result.level, result.latency)
        return result


class _TaggingStreams:
    """Stream table that tells the memory which reference is accessing."""

    class _Table(dict):
        def __init__(self, inner, memory, uid_to_ref):
            super().__init__(inner)
            self._memory = memory
            self._uid_to_ref = uid_to_ref

        def __getitem__(self, uid):
            self._memory.current_ref = self._uid_to_ref.get(uid)
            return super().__getitem__(uid)

    def __init__(self, streams, memory, uid_to_ref) -> None:
        self.by_ref = self._Table(streams.by_ref, memory, uid_to_ref)
        self.lookahead = streams.lookahead


def collect_miss_profile(
    loop_factory,
    machine: ItaniumMachine,
    trip_counts: list[int],
    config: CompilerConfig | None = None,
    seed: int = 17,
) -> MissProfile:
    """Run a sampled training execution and collect per-ref miss levels.

    ``loop_factory`` returns a fresh ``(loop, layout)`` pair (the workload
    templates have this shape).  The loop is compiled with the *baseline*
    configuration — sampling observes the unoptimised behaviour, the same
    way a sampling profiler observes a plain training binary.
    """
    from repro.core.compiler import LoopCompiler
    from repro.sim.address import build_streams
    from repro.sim.core import prepare_execution, run_iterations
    from repro.sim.counters import PerfCounters

    config = config or baseline_config()
    loop, layout = loop_factory()
    compiled = LoopCompiler(machine, config).compile(loop)
    result = compiled.result

    profile = MissProfile()
    memory = _SamplingMemory(machine.timings, profile)
    uid_to_ref = {
        inst.memref.uid: inst.memref
        for inst in result.loop.body
        if inst.memref is not None
    }

    setup = prepare_execution(result, machine)
    total = sum(trip_counts)
    streams = build_streams(result.loop, layout, total, seed=seed)
    tagged = _TaggingStreams(streams, memory, uid_to_ref)
    counters = PerfCounters()

    base = 0
    cycle = 0.0
    for n in trip_counts:
        cycle = run_iterations(
            setup, tagged, base, n, memory, machine.ozq_capacity,
            counters, cycle,
        )
        base += n
    return profile


#: miss level -> hint token
_LEVEL_TO_HINT = {
    1: LatencyHint.NONE,
    2: LatencyHint.L2,
    3: LatencyHint.L3,
    4: LatencyHint.MEM,
}


def hints_from_miss_profile(loop: Loop, profile: MissProfile) -> int:
    """Set hints on ``loop``'s loaded references from measured behaviour.

    Returns the number of references that received a hint.  FP references
    whose typical level is L2 get no hint — their base latency already
    covers an L2 hit.
    """
    marked = 0
    for inst in loop.body:
        if not inst.is_load or inst.memref is None:
            continue
        ref = inst.memref
        stats = profile.for_ref(ref)
        if stats is None or not stats.samples:
            continue
        level = stats.typical_level
        hint = _LEVEL_TO_HINT[level]
        if ref.is_fp and level <= 2:
            hint = LatencyHint.NONE
        if hint is not LatencyHint.NONE:
            ref.hint = hint
            ref.hint_source = "sampled"
            marked += 1
    return marked
