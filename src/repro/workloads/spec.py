"""The synthetic SPEC-archetype benchmark suites.

Every benchmark is one or two hot loops (built from the templates in
:mod:`repro.workloads.loops`) plus a *serial factor*: the ratio of
non-loop runtime to baseline loop runtime, which dilutes loop-level
speedups to benchmark-level percentages the way real SPEC programs do.
The archetype and parameter choices follow what the paper says about each
named benchmark (see DESIGN.md's per-experiment index); benchmarks the
paper reports as flat get cache-resident loops or large serial factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.ir.loop import Loop
from repro.sim.address import StreamSpec
from repro.workloads.datasets import DataSet
from repro.workloads import loops as T

KB = 1024
MB = 1024 * 1024

LoopFactory = Callable[[], tuple[Loop, dict[str, StreamSpec]]]


@dataclass(frozen=True)
class LoopWorkload:
    """One hot loop of a benchmark."""

    factory: LoopFactory
    data: DataSet
    #: reference-run invocations to simulate
    invocations: int = 1
    #: scale factor applied to this loop's simulated cycles
    weight: float = 1.0

    def build(self) -> tuple[Loop, dict[str, StreamSpec]]:
        return self.factory()


@dataclass(frozen=True)
class Benchmark:
    """A named benchmark: hot loops plus everything else ("serial")."""

    name: str
    suite: str
    loops: tuple[LoopWorkload, ...]
    #: non-loop cycles as a multiple of baseline loop cycles
    serial_factor: float = 1.0

    @property
    def loop_names(self) -> list[str]:
        names = []
        for lw in self.loops:
            loop, _ = lw.build()
            names.append(loop.name)
        return names


def _bench(
    name: str,
    suite: str,
    loops: list[LoopWorkload],
    serial: float = 1.0,
) -> Benchmark:
    return Benchmark(
        name=name, suite=suite, loops=tuple(loops), serial_factor=serial
    )


def _lw(
    factory: LoopFactory,
    data: DataSet,
    invocations: int = 1,
    weight: float = 1.0,
) -> LoopWorkload:
    return LoopWorkload(
        factory=factory, data=data, invocations=invocations, weight=weight
    )


# --- archetype shorthands ----------------------------------------------------

def _fp_gather(name: str, data_set: int = 8 * MB, index_set: int = 2 * MB):
    """FP indirect gather: the namd/wrf/art archetype — prefetchable only
    at reduced distance (rule 2b), L3-class latencies."""
    return partial(
        T.gather, name, index_set=index_set, data_set=data_set, fp=True
    )


def _int_gather(name: str, data_set: int = 16 * MB, index_set: int = 4 * MB):
    return partial(T.gather, name, index_set=index_set, data_set=data_set)


def _serial_only(name: str, suite: str) -> Benchmark:
    """A benchmark whose hot loops are cache-resident and tiny: the
    optimization never fires meaningfully (gcc/perlbench/crafty class)."""
    return _bench(
        name,
        suite,
        [
            _lw(
                partial(T.stream_int, f"{name}.hot", working_set=8 * KB,
                        reuse=True),
                DataSet.steady(6),
                invocations=150,
            )
        ],
        serial=6.0,
    )


# --- CPU2006 ------------------------------------------------------------------

def cpu2006_suite() -> list[Benchmark]:
    s = "CPU2006"
    return [
        _serial_only("400.perlbench", s),
        _bench("401.bzip2", s, [
            _lw(partial(T.stream_int, "401.sort", working_set=4 * MB,
                        reuse=True, streams=2),
                DataSet.steady(700), invocations=4),
        ], serial=3.0),
        _serial_only("403.gcc", s),
        _bench("410.bwaves", s, [
            _lw(partial(T.stencil_fp, "410.stencil", working_set=24 * MB),
                DataSet.steady(1200), invocations=3),
        ], serial=4.0),
        _bench("416.gamess", s, [
            _lw(partial(T.l2_resident_fp, "416.eri"),
                DataSet.steady(48), invocations=60),
        ], serial=4.0),
        _bench("429.mcf", s, [
            _lw(partial(T.pointer_chase, "429.refresh", heap=96 * MB),
                DataSet.variable(1, 4), invocations=1600),
            _lw(partial(T.pointer_chase, "429.arcwalk", heap=64 * MB),
                DataSet.steady(300), invocations=16),
        ], serial=3.0),
        _bench("433.milc", s, [
            _lw(partial(T.stream_fp, "433.su3", working_set=32 * MB),
                DataSet.steady(48), invocations=90),
        ], serial=3.0),
        _bench("434.zeusmp", s, [
            _lw(partial(T.stencil_fp, "434.hydro", working_set=24 * MB),
                DataSet.steady(1000), invocations=3),
        ], serial=4.5),
        _bench("435.gromacs", s, [
            _lw(partial(T.l2_resident_fp, "435.inl"),
                DataSet.steady(400), invocations=8),
        ], serial=4.0),
        _bench("436.cactusADM", s, [
            _lw(partial(T.stencil_fp, "436.bench", working_set=24 * MB),
                DataSet.steady(1200), invocations=3),
        ], serial=5.0),
        _bench("437.leslie3d", s, [
            _lw(partial(T.stencil_fp, "437.fluxk", working_set=24 * MB),
                DataSet.steady(1200), invocations=3),
        ], serial=3.5),
        _bench("444.namd", s, [
            _lw(_fp_gather("444.pairlist", data_set=10 * MB),
                DataSet.steady(400), invocations=12),
        ], serial=4.2),
        _bench("445.gobmk", s, [
            _lw(partial(T.cache_resident_gather, "445.owl"),
                DataSet.variable(1, 2), invocations=2400),
        ], serial=6.7),
        _serial_only("447.dealII", s),
        _bench("450.soplex", s, [
            _lw(partial(T.gather, "450.spmv", index_set=128 * KB, data_set=192 * KB, fp=True, reuse=True),
                DataSet.steady(250), invocations=8),
        ], serial=4.5),
        _serial_only("453.povray", s),
        _bench("454.calculix", s, [
            _lw(partial(T.stencil_fp, "454.e_c3d", working_set=12 * MB),
                DataSet.steady(800), invocations=4),
        ], serial=5.5),
        _bench("456.hmmer", s, [
            _lw(partial(T.stream_int, "456.viterbi", working_set=64 * KB,
                        reuse=True, streams=3),
                DataSet.steady(120), invocations=30),
        ], serial=2.0),
        _serial_only("458.sjeng", s),
        _bench("459.GemsFDTD", s, [
            _lw(partial(T.stencil_fp, "459.update", working_set=24 * MB),
                DataSet.steady(1200), invocations=3),
        ], serial=4.0),
        _bench("462.libquantum", s, [
            _lw(partial(T.stream_int, "462.gates", streams=6,
                        working_set=48 * MB),
                DataSet.steady(2500), invocations=2),
        ], serial=6.5),
        _bench("464.h264ref", s, [
            _lw(partial(T.low_trip_linear, "464.sad"),
                DataSet.steady(10), invocations=1600),
        ], serial=1.2),
        _bench("465.tonto", s, [
            _lw(partial(T.l2_resident_fp, "465.make_ft"),
                DataSet.steady(300), invocations=8),
        ], serial=4.5),
        _bench("470.lbm", s, [
            _lw(partial(T.stream_fp, "470.collide", working_set=48 * MB,
                        stride=160),
                DataSet.steady(1600), invocations=3),
        ], serial=3.5),
        _bench("471.omnetpp", s, [
            _lw(partial(T.pointer_chase, "471.msgq", heap=8 * MB,
                        field_loads=1),
                DataSet.variable(2, 8), invocations=500),
        ], serial=3.5),
        _bench("473.astar", s, [
            _lw(partial(T.gather, "473.way", index_set=256 * KB, data_set=768 * KB, reuse=True),
                DataSet.steady(200), invocations=10),
        ], serial=3.5),
        _bench("481.wrf", s, [
            _lw(_fp_gather("481.phys", data_set=10 * MB),
                DataSet.steady(350), invocations=10),
        ], serial=7.5),
        _bench("482.sphinx3", s, [
            _lw(partial(T.gather, "482.gmm", index_set=128 * KB, data_set=192 * KB, fp=True, reuse=True),
                DataSet.steady(256), invocations=10),
        ], serial=4.0),
        _serial_only("483.xalancbmk", s),
    ]


# --- micro -------------------------------------------------------------------

def micro_suite() -> list[Benchmark]:
    """A four-benchmark smoke suite spanning the main archetypes.

    Small working sets and few invocations keep a full harness sweep in
    the low seconds — the suite behind ``python -m repro bench --suite
    micro`` and the harness equality tests, not a paper figure.
    """
    s = "MICRO"
    return [
        _bench("micro.stream", s, [
            _lw(partial(T.stream_int, "micro.stream.hot", streams=2,
                        working_set=4 * MB),
                DataSet.steady(200), invocations=3),
        ], serial=2.0),
        _bench("micro.stencil", s, [
            _lw(partial(T.stencil_fp, "micro.stencil.hot",
                        working_set=4 * MB),
                DataSet.steady(200), invocations=2),
        ], serial=2.5),
        _bench("micro.chase", s, [
            _lw(partial(T.pointer_chase, "micro.chase.hot", heap=8 * MB),
                DataSet.variable(2, 6), invocations=80),
        ], serial=2.0),
        _bench("micro.lowtrip", s, [
            _lw(partial(T.low_trip_linear, "micro.lowtrip.hot"),
                DataSet.steady(10), invocations=120),
        ], serial=1.2),
    ]


# --- CPU2000 -----------------------------------------------------------------

def cpu2000_suite() -> list[Benchmark]:
    s = "CPU2000"
    return [
        _serial_only("164.gzip", s),
        _bench("168.wupwise", s, [
            _lw(partial(T.stream_fp, "168.zgemm", working_set=16 * MB),
                DataSet.steady(800), invocations=4),
        ], serial=3.5),
        _bench("171.swim", s, [
            _lw(partial(T.stencil_fp, "171.calc", working_set=24 * MB),
                DataSet.steady(1300), invocations=3),
        ], serial=4.0),
        _bench("172.mgrid", s, [
            _lw(partial(T.stencil_fp, "172.resid", working_set=24 * MB),
                DataSet.steady(1200), invocations=3),
        ], serial=4.2),
        _bench("173.applu", s, [
            _lw(partial(T.stencil_fp, "173.buts", working_set=16 * MB),
                DataSet.steady(900), invocations=3),
        ], serial=8.0),
        _serial_only("175.vpr", s),
        _serial_only("176.gcc", s),
        _bench("177.mesa", s, [
            # the train/ref trip-count mismatch of Sec. 4.2
            _lw(partial(T.low_trip_linear, "177.span"),
                DataSet.mismatch(154, 8), invocations=1600),
        ], serial=1.5),
        _bench("178.galgel", s, [
            _lw(partial(T.l2_resident_fp, "178.syshtn"),
                DataSet.steady(400), invocations=8),
        ], serial=4.0),
        _bench("179.art", s, [
            _lw(_fp_gather("179.match", data_set=8 * MB, index_set=1 * MB),
                DataSet.steady(500), invocations=10),
        ], serial=4.6),
        _bench("181.mcf", s, [
            _lw(partial(T.pointer_chase, "181.refresh", heap=48 * MB),
                DataSet.variable(1, 4), invocations=1200),
        ], serial=5.0),
        _bench("183.equake", s, [
            _lw(_fp_gather("183.smvp", data_set=10 * MB),
                DataSet.steady(300), invocations=8),
        ], serial=12.0),
        _serial_only("186.crafty", s),
        _bench("187.facerec", s, [
            _lw(partial(T.stream_fp, "187.graph", working_set=8 * MB),
                DataSet.steady(600), invocations=4),
        ], serial=3.5),
        _bench("188.ammp", s, [
            _lw(_fp_gather("188.mmfv", data_set=8 * MB),
                DataSet.steady(256), invocations=8),
        ], serial=12.0),
        _bench("189.lucas", s, [
            _lw(partial(T.stream_fp, "189.fft", working_set=16 * MB),
                DataSet.steady(900), invocations=3),
        ], serial=3.6),
        _bench("191.fma3d", s, [
            _lw(partial(T.l2_resident_fp, "191.force"),
                DataSet.steady(300), invocations=8),
        ], serial=4.2),
        _bench("197.parser", s, [
            _lw(partial(T.pointer_chase, "197.dict", heap=2 * MB,
                        field_loads=1),
                DataSet.variable(2, 10), invocations=400),
        ], serial=4.0),
        _bench("200.sixtrack", s, [
            _lw(_fp_gather("200.thin6d", data_set=10 * MB),
                DataSet.steady(400), invocations=10),
        ], serial=5.0),
        _serial_only("252.eon", s),
        _serial_only("253.perlbmk", s),
        _bench("254.gap", s, [
            _lw(partial(T.stream_int, "254.collect", working_set=12 * MB,
                        streams=2, reuse=True),
                DataSet.steady(700), invocations=4),
        ], serial=3.5),
        _serial_only("255.vortex", s),
        _bench("256.bzip2", s, [
            _lw(partial(T.stream_int, "256.sort", working_set=4 * MB,
                        streams=2, reuse=True),
                DataSet.steady(600), invocations=4),
        ], serial=3.2),
        _serial_only("300.twolf", s),
        _bench("301.apsi", s, [
            _lw(partial(T.stencil_fp, "301.dctdxf", working_set=12 * MB),
                DataSet.steady(700), invocations=4),
        ], serial=4.5),
    ]


def suite_by_name(name: str) -> list[Benchmark]:
    """The suite registered under ``name`` (cpu2006 / cpu2000 / micro)."""
    suites = {
        "cpu2006": cpu2006_suite,
        "cpu2000": cpu2000_suite,
        "micro": micro_suite,
    }
    try:
        return suites[name.lower()]()
    except KeyError:
        raise KeyError(f"unknown suite {name!r}") from None


def benchmark_by_name(name: str) -> Benchmark:
    for bench in cpu2006_suite() + cpu2000_suite() + micro_suite():
        if bench.name == name:
            return bench
    raise KeyError(f"unknown benchmark {name!r}")
