"""IR well-formedness checks.

The pipeliner relies on loops being in a dynamic-single-assignment-friendly
form: every virtual register has at most one definition site in the body
(the same site may both read and write a register, which is how induction
variables and accumulators express loop recurrences).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import IRError
from repro.ir.loop import Loop


def validate_loop(loop: Loop) -> None:
    """Raise :class:`IRError` if ``loop`` violates IR invariants."""
    if not loop.body:
        raise IRError(f"loop {loop.name!r} has an empty body")

    def_counts: Counter = Counter()
    for inst in loop.body:
        if inst.is_branch:
            raise IRError(
                f"loop {loop.name!r}: the back-edge branch is implicit; "
                "bodies must not contain branch instructions"
            )
        for reg in inst.all_defs():
            if not reg.virtual:
                continue
            def_counts[reg] += 1

    multi = [reg for reg, n in def_counts.items() if n > 1]
    if multi:
        names = ", ".join(str(r) for r in sorted(multi, key=lambda r: r.index))
        raise IRError(
            f"loop {loop.name!r}: registers with multiple definitions: {names}"
        )

    for inst in loop.body:
        if inst.is_memory and inst.address_reg is None:
            raise IRError(f"loop {loop.name!r}: memory op without address: {inst}")
        if inst.is_store and len(inst.uses) < 2:
            raise IRError(
                f"loop {loop.name!r}: store needs address and value: {inst}"
            )

    # live-out registers must be produced by the loop or pass through it
    defined = set(def_counts)
    for reg in loop.live_out:
        if reg.virtual and reg not in defined and reg not in loop.live_in:
            raise IRError(
                f"loop {loop.name!r}: live-out register {reg} is never defined"
            )
