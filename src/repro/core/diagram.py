"""Pipeline diagrams: the conceptual views of Figs. 2 and 4.

Renders a schedule as the paper draws it — columns are source iterations,
rows are cycles, each cell names the instruction issued for that source
iteration in that cycle::

    Cycle |  1    2    3    4    5
    ------+------------------------
        0 | ld4
        1 | add  ld4
        2 | st4  add  ld4
        3 |      st4  add  ld4
        ...

With latency-tolerant scheduling the "latency buffer stages" appear as
the gap between the load column entry and its use (Fig. 4).
"""

from __future__ import annotations

from repro.pipeliner.schedule import Schedule


def pipeline_diagram(
    schedule: Schedule,
    iterations: int = 5,
    max_cycles: int | None = None,
) -> str:
    """Render the first ``iterations`` source iterations as in Fig. 2."""
    ii = schedule.ii
    ops = sorted(schedule.loop.body, key=lambda i: schedule.time_of(i))
    makespan = schedule.makespan
    total_cycles = (iterations - 1) * ii + makespan
    if max_cycles is not None:
        total_cycles = min(total_cycles, max_cycles)

    # cell width fits the longest mnemonic
    width = max(len(op.mnemonic) for op in ops) + 2

    def cell(text: str = "") -> str:
        return f"{text:<{width}}"

    header = "Cycle |" + "".join(
        cell(str(i + 1)) for i in range(iterations)
    )
    lines = [header, "------+" + "-" * (width * iterations)]

    grid: dict[tuple[int, int], list[str]] = {}
    for i in range(iterations):
        for op in ops:
            cycle = i * ii + schedule.time_of(op)
            if cycle < total_cycles:
                grid.setdefault((cycle, i), []).append(op.mnemonic)

    for cycle in range(total_cycles):
        row = f"{cycle:5d} |"
        for i in range(iterations):
            names = grid.get((cycle, i))
            row += cell("/".join(names) if names else "")
        lines.append(row.rstrip())
    return "\n".join(lines)


def stage_table(schedule: Schedule) -> str:
    """A per-stage summary: which operations live in which stage."""
    from repro.ir.printer import format_instruction

    by_stage: dict[int, list] = {}
    for inst in schedule.loop.body:
        by_stage.setdefault(schedule.stage_of(inst), []).append(inst)
    lines = [f"{schedule.stage_count} stages at II={schedule.ii}:"]
    for stage in range(schedule.stage_count):
        members = by_stage.get(stage, [])
        if members:
            for inst in members:
                lines.append(f"  stage {stage}: {format_instruction(inst)}")
        else:
            lines.append(f"  stage {stage}: (latency buffer)")
    return "\n".join(lines)
