"""The job scheduler: supervised workers with deterministic ordering.

``run_jobs`` executes :class:`~repro.harness.jobs.BenchmarkJob` values
either in-process (``workers <= 1``) or on a supervised
:class:`~repro.harness.workers.WorkerPool`; results always come back in
submission order regardless of completion order, so a parallel sweep is a
drop-in replacement for the serial loop.  A job that exceeds its timeout
has its worker terminated and replaced, and comes back as a structured
``timeout`` outcome — the rest of the sweep completes normally.
``run_suite`` is the high-level entry: a (benchmarks x configs) grid run
through the pool and the artifact cache, returning results plus a
:class:`~repro.harness.manifest.RunManifest`.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import time
from pathlib import Path

from repro.config import CompilerConfig
from repro.core.results import BenchmarkResult, ExperimentResult, percent_gain
from repro.errors import HarnessError
from repro.harness.cache import ArtifactCache
from repro.harness.jobs import BenchmarkJob, JobOutcome, run_job
from repro.harness.manifest import CellRecord, RunManifest, default_runs_dir
from repro.harness.workers import TASK_OK, TASK_TIMEOUT, run_supervised
from repro.machine.itanium2 import ItaniumMachine
from repro.workloads.spec import Benchmark


def default_workers() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _execute(job: BenchmarkJob, cache_root: str | None) -> JobOutcome:
    """Worker entry point: each process opens its own cache handle."""
    cache = ArtifactCache(cache_root) if cache_root else None
    return run_job(job, cache)


def run_tasks(
    fn,
    payloads: list,
    *,
    workers: int = 1,
    timeout: float | None = None,
    labels: list[str] | None = None,
):
    """Map ``fn`` over ``payloads``, returning results in submission order.

    The generic engine under :func:`run_jobs` and the fuzzing campaign
    driver: ``workers <= 1`` runs serially in-process; otherwise a
    supervised pool of forked workers executes ``fn(payload)`` calls
    concurrently.  ``fn`` must be picklable (a module-level callable or
    :func:`functools.partial` of one), and so must every payload and
    result.  ``timeout`` bounds any single task's *execution*, in
    seconds; the offending worker is reaped, the whole batch still runs
    to completion, and the timeout is raised afterwards as a
    :class:`HarnessError` naming the task (``labels`` supply the names).
    Callers that want timeouts *recorded* instead of raised use
    :func:`~repro.harness.workers.run_supervised` directly, as
    :func:`run_jobs` does.
    """
    if workers <= 1:
        return [fn(payload) for payload in payloads]
    results = run_supervised(fn, payloads, workers=workers, timeout=timeout)
    values = []
    for i, result in enumerate(results):
        if result.status == TASK_TIMEOUT:
            label = labels[i] if labels else f"task {i}"
            raise HarnessError(
                f"{label} exceeded the {timeout}s timeout"
            ) from None
        if result.status != TASK_OK:
            if result.exception is not None:
                raise result.exception
            raise HarnessError(result.error or f"task {i} failed")
        values.append(result.value)
    return values


def run_jobs(
    jobs: list[BenchmarkJob],
    *,
    workers: int = 1,
    cache: ArtifactCache | str | Path | None = None,
    timeout: float | None = None,
) -> list[JobOutcome]:
    """Execute ``jobs``, returning outcomes in submission order.

    ``workers <= 1`` runs serially in-process (sharing the caller's cache
    handle, so its hit/miss stats stay live).  Otherwise a supervised
    pool of ``workers`` executes jobs concurrently; workers share the
    cache *directory* (writes are atomic), and hit/miss provenance comes
    back in each :class:`JobOutcome`.  ``timeout`` bounds any single
    job's execution, in seconds: a job that exceeds it has its worker
    terminated and reaped, and comes back as a
    ``JobOutcome(status="timeout", result=None)`` while every other job
    completes — the manifest records the timeout instead of the sweep
    aborting.  Worker crashes and job exceptions still raise.
    """
    cache_obj, cache_root = _normalise_cache(cache)
    if workers <= 1:
        outcomes = []
        for job in jobs:
            outcomes.append(run_job(job, cache_obj))
        return outcomes
    results = run_supervised(
        functools.partial(_execute, cache_root=cache_root),
        jobs,
        workers=workers,
        timeout=timeout,
    )
    outcomes = []
    for job, result in zip(jobs, results):
        if result.status == TASK_OK:
            outcomes.append(result.value)
        elif result.status == TASK_TIMEOUT:
            outcomes.append(JobOutcome(
                result=None,
                cache_hit=False,
                duration_s=result.duration_s,
                status="timeout",
                backend=job.backend,
            ))
        else:
            if result.exception is not None:
                raise result.exception
            raise HarnessError(
                f"job {job.key} failed: {result.error or 'unknown error'}"
            )
    return outcomes


def _normalise_cache(
    cache: ArtifactCache | str | Path | None,
) -> tuple[ArtifactCache | None, str | None]:
    if cache is None:
        return None, None
    if isinstance(cache, ArtifactCache):
        return cache, str(cache.root)
    return ArtifactCache(cache), str(cache)


@dataclasses.dataclass
class SuiteRun:
    """A full (benchmarks x configs) grid run through the harness."""

    #: config label -> benchmark name -> result
    results: dict[str, dict[str, BenchmarkResult]]
    manifest: RunManifest

    def config(self, label: str) -> dict[str, BenchmarkResult]:
        try:
            return self.results[label]
        except KeyError:
            raise HarnessError(
                f"no config {label!r} in run "
                f"(have: {', '.join(self.results)})"
            ) from None


def run_suite(
    benchmarks: list[Benchmark],
    configs: list[CompilerConfig],
    *,
    machine: ItaniumMachine | None = None,
    seed: int = 2008,
    workers: int = 1,
    cache: ArtifactCache | str | Path | None = None,
    timeout: float | None = None,
    suite_name: str = "",
    manifest_path: str | Path | None = None,
    verify: bool = False,
    trace: bool = False,
    backend: str = "",
) -> SuiteRun:
    """Run every benchmark under every config, in parallel, with caching.

    Duplicate config labels are deduplicated (first occurrence wins).
    When ``manifest_path`` is given the manifest is written there; pass
    ``manifest_path=""`` (falsy) to skip writing, or a directory-less
    default is derived from :func:`default_runs_dir` by the CLI layer.
    ``verify`` runs the :mod:`repro.analysis` translation validator on
    every compiled loop and records the status per manifest cell.
    ``trace`` attaches the :mod:`repro.trace` stall-attribution analyzer
    to every loop simulation and records the closed-accounted summary per
    manifest cell (simulated cycles are unaffected either way).
    ``backend`` picks the simulator implementation per cell ("interp" |
    "fast", "" = session default); backends are bit-identical, so the
    choice is recorded in the manifest but never enters cache keys or
    the manifest fingerprint.  ``machine`` selects the machine model
    (default the itanium2 reference) — unlike the backend it determines
    the cycles, so its name and description digest are recorded per cell
    and the manifest fingerprint covers non-default machines.
    """
    machine = machine or ItaniumMachine()
    machine_digest = machine.digest()
    unique_configs: list[CompilerConfig] = []
    seen: set[str] = set()
    for config in configs:
        if config.label not in seen:
            seen.add(config.label)
            unique_configs.append(config)

    jobs = [
        BenchmarkJob(benchmark=bench, config=config, machine=machine,
                     seed=seed, verify=verify, trace=trace, backend=backend)
        for config in unique_configs
        for bench in benchmarks
    ]
    start = time.perf_counter()
    outcomes = run_jobs(jobs, workers=workers, cache=cache, timeout=timeout)
    wall = time.perf_counter() - start

    results: dict[str, dict[str, BenchmarkResult]] = {
        config.label: {} for config in unique_configs
    }
    cells: list[CellRecord] = []
    for job, outcome in zip(jobs, outcomes):
        result = outcome.result
        if result is None:  # timed out: record the cell, skip the results
            cells.append(CellRecord(
                benchmark=job.benchmark.name,
                suite=job.benchmark.suite,
                config=job.config.label,
                total_cycles=0.0,
                loop_cycles=0.0,
                serial_cycles=0.0,
                cache_hit=False,
                duration_s=outcome.duration_s,
                status=outcome.status,
                backend=outcome.backend,
                machine=machine.name,
                machine_digest=machine_digest,
            ))
            continue
        results[job.config.label][job.benchmark.name] = result
        verification = outcome.verification or {}
        bounds = verification.get("bounds") or {}
        cells.append(CellRecord(
            benchmark=result.name,
            suite=result.suite,
            config=result.config_label,
            total_cycles=result.total_cycles,
            loop_cycles=result.loop_cycles,
            serial_cycles=result.serial_cycles,
            cache_hit=outcome.cache_hit,
            duration_s=outcome.duration_s,
            verified=outcome.verification is not None,
            verify_errors=verification.get("errors", 0),
            verify_warnings=verification.get("warnings", 0),
            bounds_checked=bounds.get("checked", 0),
            bounds_violations=bounds.get("violations", 0),
            trace=outcome.trace,
            backend=outcome.backend,
            machine=machine.name,
            machine_digest=machine_digest,
        ))

    manifest = RunManifest.new(
        suite=suite_name or (benchmarks[0].suite if benchmarks else ""),
        seed=seed,
        workers=workers,
        configs=[config.label for config in unique_configs],
        cells=cells,
        wall_time_s=wall,
        machine=machine.name,
    )
    if manifest_path:
        manifest.save(manifest_path)
    return SuiteRun(results=results, manifest=manifest)


def compare_configs(
    run: SuiteRun, baseline_label: str, variant_label: str
) -> ExperimentResult:
    """Baseline-vs-variant gains out of one grid run.

    Benchmarks missing from either side (e.g. a timed-out cell) are
    skipped rather than raising, mirroring manifest comparison.
    """
    base = run.config(baseline_label)
    var = run.config(variant_label)
    gains = {
        name: percent_gain(base[name].total_cycles, var[name].total_cycles)
        for name in base
        if name in var
    }
    return ExperimentResult(
        baseline_label=baseline_label,
        variant_label=variant_label,
        gains=gains,
        baseline=base,
        variant=var,
    )


def default_manifest_path(suite_name: str) -> Path:
    """An auto-named manifest file under the default runs directory."""
    stamp = time.strftime("%Y%m%dT%H%M%S")
    return default_runs_dir() / f"{stamp}-{suite_name or 'suite'}.json"
